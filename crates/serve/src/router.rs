//! The sharded-serving front tier ([`Router`]): one process speaking
//! the wire protocol of [`protocol`](crate::protocol) on **both hops**
//! — clients talk to the router exactly as they would to a single
//! `vrdag-serve`, and the router talks the same protocol to N backend
//! nodes.
//!
//! What the router owns:
//!
//! * **AUTH termination** — tenant tokens are verified here (same
//!   constant-time [`TenantRegistry`] as a single node); backends never
//!   see a token. On the internal hop the authenticated identity rides
//!   as a `tenant=` assertion on every relayed `GEN`/`SUB` line, which
//!   backends accept only in internal mode
//!   ([`FrontendConfig::trust_tenant_assertion`](crate::FrontendConfig)),
//!   so backend-side quotas and weighted fairness still apply per
//!   tenant.
//! * **Placement** — requests are consistent-hashed by
//!   `(model fingerprint, seed / seed_range)` onto the backend fleet
//!   via rendezvous hashing ([`BackendPool`](crate::backend)): identical
//!   keys always land on the same node's `SnapshotCache` (cache
//!   locality for free), and a backend loss moves only that backend's
//!   keys.
//! * **Verbatim relay** — reply frames (`OK GEN` + payload, `OK SUB`,
//!   `EVT`/`END` streams, backend `ERR`s) are forwarded byte-for-byte;
//!   the router parses headers only for bookkeeping, never re-encodes a
//!   payload, so a generation through the router is bit-identical to
//!   one served directly.
//! * **Failover** — `GEN` is idempotent (generation is deterministic by
//!   construction), so a `GEN` pending on a backend that dies is
//!   re-placed on the surviving fleet with bounded backoff
//!   ([`RouterConfig::gen_retries`]); an in-flight `SUB` stream cannot
//!   be replayed transparently (frames already reached the client) and
//!   terminates with a clean `ERR backend-unavailable tag=…` instead —
//!   the connection stays usable.
//! * **Aggregation** — `STATS`/`MODELS`/`METRICS` fan out to every
//!   reachable backend and come back as one reply: per-tenant counters
//!   summed across nodes, the model listing deduplicated, Prometheus
//!   series summed and merged with the router's own registry.
//!
//! The concurrency model is **one session per client connection**, each
//! running its own small non-blocking event loop on a private
//! [`vrdag_poll`] poller that watches the client socket plus that
//! session's lazily-dialed backend connections. Because backend
//! connections are per-session, tags never collide across clients and
//! nothing needs rewriting — the relay stays verbatim — while within a
//! session everything is single-threaded: no locks on the data path, a
//! full client outbox pauses backend reads (and vice versa), exactly
//! the reactor's backpressure discipline at one connection's scale.

use crate::backend::{hash_bytes, BackendPool};
use crate::protocol::{
    parse_reply, parse_request, EndStatus, ErrorCode, GenSpec, ProtocolError, ReplyHeader, Request,
    WireFormat, MAX_LINE_BYTES,
};
use crate::reactor::{salvage_tag, LineScanner, ScanLine};
use crate::tenant::{TenantRegistry, ANONYMOUS_TENANT};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vrdag_obs::{mint_trace_id, Counter, Gauge, Histogram, Logger, Registry, Span, SpanRecorder};
use vrdag_poll::{connect_ready, create, raw_fd, Backend, Event, Interest, Poller, Waker};

/// Per-direction buffered-byte cap of a session. A peer that stops
/// reading pauses the opposite direction at this bound instead of
/// growing an unbounded queue in router memory.
const MAX_BUFFER: usize = 1 << 20;

/// Poll timeout of the accept loop and every session loop — the
/// latency bound on noticing the stop flag.
const TICK: Duration = Duration::from_millis(100);

/// How long a `QUIT` waits for in-flight relays to drain before the
/// session answers `OK BYE` anyway (mirrors the reactor's drain bound).
const QUIT_DRAIN: Duration = Duration::from_secs(60);

/// Construction-time knobs of a [`Router`].
pub struct RouterConfig {
    /// Tenant registry for client-side `AUTH` termination. With no
    /// tokens configured the router serves anonymously and relays
    /// without a tenant assertion.
    pub tenants: TenantRegistry,
    /// `GEN`/`SUB` relays one client connection may keep in flight.
    /// Higher than a single node's default: one session multiplexes
    /// over many backend connections, each with its own backend-side
    /// cap that still applies per hop.
    pub max_inflight_per_conn: usize,
    /// How many times a pending idempotent `GEN` is re-placed after its
    /// backend dies before the client sees `ERR backend-unavailable`.
    pub gen_retries: u32,
    /// Backoff before retry attempt `n` is `retry_backoff * n` —
    /// bounded by `gen_retries`, so the worst case adds
    /// `backoff * retries * (retries + 1) / 2` of delay.
    pub retry_backoff: Duration,
    /// Deadline for dialing a backend (and for the startup `MODELS`
    /// fingerprint probe).
    pub dial_timeout: Duration,
    /// Width of the seed bucket in the placement key (`seed /
    /// seed_range`): consecutive seeds within one bucket share a
    /// backend (cache + scheduler affinity), buckets fan out.
    pub seed_range: u64,
    /// Readiness backend for the accept loop and every session loop.
    pub poller: Backend,
    pub logger: Logger,
    /// The router's own metrics registry (`vrdag_route_*`; also the
    /// local half of an aggregated `METRICS` reply).
    pub metrics: Registry,
    /// Ring of completed relay [`Span`]s — one per routed `GEN`/`SUB`,
    /// keyed by the trace id the router mints and stamps on the
    /// internal hop (the owning backend records its serve-tier span
    /// under the same id). Feed it to an HTTP listener's `/traces`
    /// endpoint by cloning the handle.
    pub spans: SpanRecorder,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            tenants: TenantRegistry::default(),
            max_inflight_per_conn: 256,
            gen_retries: 2,
            retry_backoff: Duration::from_millis(50),
            dial_timeout: Duration::from_secs(2),
            seed_range: 16,
            poller: Backend::Auto,
            logger: Logger::default(),
            metrics: Registry::default(),
            spans: SpanRecorder::default(),
        }
    }
}

/// State shared by the acceptor and every session.
struct Shared {
    pool: BackendPool,
    tenants: TenantRegistry,
    logger: Logger,
    metrics: Registry,
    /// Model name → artifact fingerprint, learned from backend `MODELS`
    /// listings (startup probe + every aggregated `MODELS`). Placement
    /// falls back to hashing the name until a fingerprint is known.
    fingerprints: Mutex<HashMap<String, u64>>,
    relay_seconds: Histogram,
    retries: Counter,
    relayed_frames: Counter,
    spans: SpanRecorder,
    open: AtomicUsize,
    open_gauge: Gauge,
    stop: AtomicBool,
    max_inflight: usize,
    gen_retries: u32,
    retry_backoff: Duration,
    dial_timeout: Duration,
    poller: Backend,
}

/// The routing front tier. Binds a listener, probes the backends for
/// model fingerprints, and serves each accepted client connection on
/// its own session thread until [`shutdown`](Router::shutdown) (or
/// drop).
pub struct Router {
    local_addr: SocketAddr,
    waker: Waker,
    accept: Option<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Router {
    /// Bind `addr` and route onto `backends`. The backends are probed
    /// synchronously (bounded by [`RouterConfig::dial_timeout`] each)
    /// for their model fingerprints; an unreachable backend starts
    /// *down* and is re-probed on demand, so the router comes up even
    /// with a partially-dead fleet.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backends: Vec<SocketAddr>,
        cfg: RouterConfig,
    ) -> io::Result<Router> {
        if backends.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "router needs >= 1 backend"));
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let pool = BackendPool::new(backends, cfg.seed_range, &cfg.metrics);
        crate::publish_build_info(&cfg.metrics);
        let shared = Arc::new(Shared {
            tenants: cfg.tenants,
            logger: cfg.logger,
            fingerprints: Mutex::new(HashMap::new()),
            relay_seconds: cfg.metrics.histogram("vrdag_route_relay_seconds", &[]),
            retries: cfg.metrics.counter("vrdag_route_retries_total", &[]),
            relayed_frames: cfg.metrics.counter("vrdag_route_relayed_frames_total", &[]),
            spans: cfg.spans,
            open: AtomicUsize::new(0),
            open_gauge: cfg.metrics.gauge("vrdag_route_open_connections", &[]),
            stop: AtomicBool::new(false),
            max_inflight: cfg.max_inflight_per_conn.max(1),
            gen_retries: cfg.gen_retries,
            retry_backoff: cfg.retry_backoff,
            dial_timeout: cfg.dial_timeout,
            poller: cfg.poller,
            metrics: cfg.metrics,
            pool,
        });
        shared.open_gauge.set(0);
        for slot in 0..shared.pool.len() {
            probe_backend(&shared, slot);
        }
        shared.logger.info(
            "serve.router",
            "routing",
            &[
                ("addr", local_addr.to_string()),
                ("backends", shared.pool.len().to_string()),
                ("up", shared.pool.up_count().to_string()),
            ],
        );
        let mut poller = create(shared.poller)?;
        let waker = poller.waker();
        poller.register(raw_fd(&listener), 0, Interest::READABLE)?;
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("vrdag-route-accept".to_string())
            .spawn(move || accept_loop(listener, poller, accept_shared))
            .expect("spawn router accept thread");
        Ok(Router { local_addr, waker, accept: Some(accept), shared })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Client connections currently being served.
    pub fn open_connections(&self) -> usize {
        self.shared.open.load(Ordering::SeqCst)
    }

    /// Health of backend `slot`, as placement currently sees it.
    pub fn backend_up(&self, slot: usize) -> bool {
        self.shared.pool.get(slot).is_up()
    }

    /// The router's own metrics registry (`vrdag_route_*`).
    pub fn metrics(&self) -> &Registry {
        &self.shared.metrics
    }

    /// The ring of completed relay spans this router records into (a
    /// clone of [`RouterConfig::spans`]).
    pub fn spans(&self) -> &SpanRecorder {
        &self.shared.spans
    }

    /// Readiness: can the router place a request right now? True while
    /// at least one backend is up — the `/readyz` predicate.
    pub fn ready(&self) -> bool {
        self.shared.pool.up_count() >= 1
    }

    /// The aggregated Prometheus exposition: every reachable backend's
    /// `METRICS` payload merged (series summed), plus the router's own
    /// registry — the same bytes a wire `METRICS` command returns, for
    /// the HTTP `/metrics` endpoint. Blocks on one round trip per up
    /// backend (bounded by [`RouterConfig::dial_timeout`] each).
    pub fn metrics_text(&self) -> String {
        let mut texts: Vec<String> = Vec::new();
        for slot in 0..self.shared.pool.len() {
            let meta = self.shared.pool.get(slot);
            if !meta.is_up() {
                continue;
            }
            match blocking_round_trip(&self.shared, slot, b"METRICS\n") {
                Ok((ReplyHeader::Metrics { .. }, payload)) => {
                    if let Ok(text) = String::from_utf8(payload) {
                        texts.push(text);
                    }
                }
                Ok(_) => {}
                Err(_) => {
                    meta.note_dial_failure();
                    meta.mark_down();
                }
            }
        }
        // The router's own registry joins the merge as one more input
        // (instead of being appended raw) so families registered on
        // both sides — `vrdag_build_info` — stay a single family with
        // a single (summed) sample, a valid exposition.
        texts.push(self.shared.metrics.render());
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        merge_prometheus(&refs)
    }

    /// Stop accepting, wake the acceptor, and wait (bounded) for the
    /// session threads to notice the flag and finish. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.waker.wake();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.shared.open.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One blocking request/reply round trip against backend `slot` on a
/// fresh connection, bounded by the dial timeout in each direction.
/// Shared by the startup fingerprint probe and the HTTP `/metrics`
/// fan-out — neither runs on a session's event loop.
fn blocking_round_trip(
    shared: &Shared,
    slot: usize,
    request: &[u8],
) -> io::Result<(ReplyHeader, Vec<u8>)> {
    let meta = shared.pool.get(slot);
    let stream = TcpStream::connect_timeout(&meta.addr(), shared.dial_timeout)?;
    stream.set_read_timeout(Some(shared.dial_timeout))?;
    stream.set_write_timeout(Some(shared.dial_timeout))?;
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    stream.write_all(request)?;
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    while byte[0] != b'\n' {
        if raw.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "oversized reply header"));
        }
        stream.read_exact(&mut byte)?;
        raw.push(byte[0]);
    }
    let line = std::str::from_utf8(&raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 reply"))?;
    let header = parse_reply(line.trim_end())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut payload = vec![0u8; header.payload_bytes()];
    stream.read_exact(&mut payload)?;
    let _ = stream.write_all(b"QUIT\n");
    Ok((header, payload))
}

/// Startup/recovery fingerprint probe: one blocking `MODELS` round trip
/// against backend `slot`. Marks the backend's health from the outcome.
fn probe_backend(shared: &Shared, slot: usize) {
    let meta = shared.pool.get(slot);
    let outcome = blocking_round_trip(shared, slot, b"MODELS\n").map(|(header, payload)| {
        if let ReplyHeader::Models { .. } = header {
            learn_fingerprints(shared, &payload);
        }
    });
    match outcome {
        Ok(()) => meta.mark_up(),
        Err(e) => {
            meta.note_dial_failure();
            meta.mark_down();
            shared.logger.warn(
                "serve.router",
                "backend probe failed",
                &[("backend", meta.addr().to_string()), ("error", e.to_string())],
            );
        }
    }
}

/// Harvest `name … fingerprint=<hex>` pairs from a `MODELS` payload.
fn learn_fingerprints(shared: &Shared, payload: &[u8]) {
    let Ok(text) = std::str::from_utf8(payload) else { return };
    let mut map = shared.fingerprints.lock().expect("fingerprint map poisoned");
    for line in text.lines() {
        let mut tokens = line.split_whitespace();
        let Some(name) = tokens.next() else { continue };
        for token in tokens {
            if let Some(hex) = token.strip_prefix("fingerprint=") {
                if let Ok(fp) = u64::from_str_radix(hex, 16) {
                    map.insert(name.to_string(), fp);
                }
            }
        }
    }
}

fn accept_loop(listener: TcpListener, mut poller: Box<dyn Poller>, shared: Arc<Shared>) {
    let mut events: Vec<Event> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        if poller.poll(&mut events, Some(TICK)).is_err() {
            std::thread::sleep(TICK);
            continue;
        }
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let session_shared = Arc::clone(&shared);
                    let count = shared.open.fetch_add(1, Ordering::SeqCst) + 1;
                    shared.open_gauge.set(count as u64);
                    let spawned = std::thread::Builder::new()
                        .name("vrdag-route-session".to_string())
                        .spawn(move || {
                            let _ = stream.set_nodelay(true);
                            let shared_for_exit = Arc::clone(&session_shared);
                            if let Ok(session) = Session::new(stream, session_shared) {
                                session.run();
                            }
                            let left = shared_for_exit.open.fetch_sub(1, Ordering::SeqCst) - 1;
                            shared_for_exit.open_gauge.set(left as u64);
                        });
                    if spawned.is_err() {
                        let left = shared.open.fetch_sub(1, Ordering::SeqCst) - 1;
                        shared.open_gauge.set(left as u64);
                    }
                    let _ = peer;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    std::thread::sleep(TICK);
                    break;
                }
            }
        }
    }
}

/// A reply frame read off a backend connection: the raw header line
/// exactly as received (relay is verbatim), its parse, and the payload.
struct BackendFrame {
    raw: String,
    header: ReplyHeader,
    payload: Vec<u8>,
}

/// Incremental frame reassembler for the backend side of the relay.
/// Unlike the request side, reply frames carry length-prefixed payloads
/// whose bytes may contain `\n`, so this scanner alternates between
/// line mode (headers) and counted mode (payloads).
#[derive(Default)]
struct FrameScanner {
    buf: Vec<u8>,
    pending: Option<(String, ReplyHeader)>,
}

impl FrameScanner {
    fn feed(&mut self, chunk: &[u8], out: &mut Vec<BackendFrame>) -> Result<(), String> {
        self.buf.extend_from_slice(chunk);
        loop {
            if let Some((_, header)) = &self.pending {
                let need = header.payload_bytes();
                if self.buf.len() < need {
                    return Ok(());
                }
                let payload: Vec<u8> = self.buf.drain(..need).collect();
                let (raw, header) = self.pending.take().expect("pending frame vanished");
                out.push(BackendFrame { raw, header, payload });
                continue;
            }
            let Some(nl) = self.buf.iter().position(|&b| b == b'\n') else {
                if self.buf.len() > MAX_LINE_BYTES {
                    return Err("oversized reply header from backend".to_string());
                }
                return Ok(());
            };
            let line_bytes: Vec<u8> = self.buf.drain(..=nl).collect();
            let line = std::str::from_utf8(&line_bytes[..nl])
                .map_err(|_| "non-utf8 reply header from backend".to_string())?
                .trim_end_matches('\r')
                .to_string();
            if line.is_empty() {
                continue;
            }
            let header = parse_reply(&line).map_err(|e| e.to_string())?;
            if header.payload_bytes() > 0 {
                self.pending = Some((line, header));
            } else {
                out.push(BackendFrame { raw: line, header, payload: Vec::new() });
            }
        }
    }
}

/// One lazily-dialed backend connection of a session.
struct BackendConn {
    stream: TcpStream,
    scanner: FrameScanner,
    out: Vec<u8>,
    out_pos: usize,
    interest: Interest,
}

impl BackendConn {
    fn new(stream: TcpStream) -> BackendConn {
        BackendConn {
            stream,
            scanner: FrameScanner::default(),
            out: Vec::new(),
            out_pos: 0,
            interest: Interest::READABLE,
        }
    }

    fn buffered(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// What a relayed tagged request is, for failover bookkeeping.
enum EntryKind {
    /// Idempotent; `line` is the internal-hop request line for replay.
    Gen { line: String, attempts: u32 },
    /// Not replayable once frames may have reached the client.
    Sub,
}

/// One in-flight tagged relay.
struct Entry {
    slot: usize,
    kind: EntryKind,
    t0: Instant,
    /// Trace id minted by this router and stamped on the internal hop;
    /// the relay span records under it at the terminal frame.
    trace: String,
    model: String,
    seed: u64,
    /// Milliseconds spent acquiring a backend (dial + failover
    /// re-dials), accumulated across retries.
    dial_ms: f64,
}

/// One in-flight *untagged* `GEN`. Untagged replies carry no tag to
/// match on, so completion is matched by the `(model, t, seed, fmt)`
/// echo in the `OK GEN` header (deterministic generation makes jobs
/// with identical coordinates interchangeable); an untagged `ERR`
/// resolves the oldest entry on that backend.
struct UntaggedGen {
    slot: usize,
    line: String,
    attempts: u32,
    model: String,
    t_len: usize,
    seed: u64,
    fmt: WireFormat,
    t0: Instant,
    trace: String,
    dial_ms: f64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum AggKind {
    Stats,
    Metrics,
    Models,
}

/// One backend's contribution to a fan-out reply.
enum Part {
    Waiting,
    Payload(Vec<u8>),
    /// Unreachable, or answered with an `ERR`; carries the note shown
    /// in the aggregate.
    Down(String),
}

/// A `STATS`/`MODELS`/`METRICS` fan-out in progress.
struct Aggregate {
    kind: AggKind,
    client_tag: Option<String>,
    parts: Vec<Part>,
    remaining: usize,
}

/// One client connection's relay loop. Owns a private poller watching
/// the client socket (token 0) and this session's backend connections
/// (token = slot + 1); everything is single-threaded.
struct Session {
    shared: Arc<Shared>,
    poller: Box<dyn Poller>,
    client: TcpStream,
    scanner: LineScanner,
    out: Vec<u8>,
    out_pos: usize,
    client_interest: Interest,
    conns: Vec<Option<BackendConn>>,
    inflight: HashMap<String, Entry>,
    untagged: Vec<UntaggedGen>,
    aggs: HashMap<u64, Aggregate>,
    /// Internal aggregate tag → (aggregate id, slot).
    agg_pending: HashMap<String, (u64, usize)>,
    next_agg: u64,
    /// Counter behind server-assigned `~<n>` SUB tags (mirrors the
    /// reactor's numbering so a session through the router hands out
    /// the same tags a direct connection would).
    auto_tag: u64,
    /// Counter behind internal `~a<n>` aggregate probe tags.
    agg_tag: u64,
    authed: bool,
    tenant_id: String,
    draining: Option<Instant>,
    drain_tag: Option<String>,
    closing: bool,
}

impl Session {
    fn new(client: TcpStream, shared: Arc<Shared>) -> io::Result<Session> {
        client.set_nonblocking(true)?;
        let mut poller = create(shared.poller)?;
        poller.register(raw_fd(&client), 0, Interest::READABLE)?;
        let slots = shared.pool.len();
        Ok(Session {
            poller,
            client,
            scanner: LineScanner::default(),
            out: Vec::new(),
            out_pos: 0,
            client_interest: Interest::READABLE,
            conns: (0..slots).map(|_| None).collect(),
            inflight: HashMap::new(),
            untagged: Vec::new(),
            aggs: HashMap::new(),
            agg_pending: HashMap::new(),
            next_agg: 0,
            auto_tag: 0,
            agg_tag: 0,
            authed: false,
            tenant_id: ANONYMOUS_TENANT.to_string(),
            draining: None,
            drain_tag: None,
            closing: false,
            shared,
        })
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                return;
            }
            if self.poller.poll(&mut events, Some(TICK)).is_err() {
                return;
            }
            let fired: Vec<Event> = events.clone();
            for ev in fired {
                if ev.token == 0 {
                    if ev.writable && self.flush_client().is_err() {
                        return;
                    }
                    if ev.readable {
                        match self.read_client() {
                            Ok(true) => {}
                            // EOF or transport failure: drop everything;
                            // the backends observe their conns closing
                            // and cancel in-flight work themselves.
                            Ok(false) | Err(_) => return,
                        }
                    }
                } else {
                    let slot = ev.token - 1;
                    if self.conns.get(slot).is_some_and(Option::is_some) {
                        if ev.writable {
                            if let Err(e) = self.flush_backend(slot) {
                                self.backend_failed(slot, &e.to_string());
                            }
                        }
                        if self.conns[slot].is_some() && ev.readable {
                            if let Err(e) = self.read_backend(slot) {
                                self.backend_failed(slot, &e.to_string());
                            }
                        }
                    }
                }
            }
            self.check_drain();
            if self.flush_client().is_err() {
                return;
            }
            if self.closing && self.buffered_client() == 0 {
                return;
            }
            if self.update_interests().is_err() {
                return;
            }
        }
    }

    // ----- byte plumbing ---------------------------------------------------

    fn buffered_client(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn push_client_bytes(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    /// Queue a router-originated reply frame to the client.
    fn push_reply(&mut self, header: ReplyHeader, payload: &[u8]) {
        let line = header.to_line();
        self.out.reserve(line.len() + 1 + payload.len());
        self.out.extend_from_slice(line.as_bytes());
        self.out.push(b'\n');
        self.out.extend_from_slice(payload);
    }

    fn push_err(&mut self, code: ErrorCode, tag: Option<String>, message: impl Into<String>) {
        self.push_reply(ReplyHeader::Err { code, tag, message: message.into() }, &[]);
    }

    fn flush_client(&mut self) -> io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.client.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(())
    }

    fn flush_backend(&mut self, slot: usize) -> io::Result<()> {
        let Some(conn) = self.conns[slot].as_mut() else { return Ok(()) };
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if conn.out_pos == conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
        }
        Ok(())
    }

    /// Recompute and apply per-fd interest: writable only while bytes
    /// are queued, readable only while the opposite direction has room
    /// (cross-hop backpressure).
    fn update_interests(&mut self) -> io::Result<()> {
        let client_room = self.buffered_client() < MAX_BUFFER;
        let backend_room =
            self.conns.iter().flatten().map(BackendConn::buffered).sum::<usize>() < MAX_BUFFER;
        let want = Interest {
            readable: !self.closing && self.draining.is_none() && backend_room,
            writable: self.buffered_client() > 0,
        };
        if want != self.client_interest {
            self.poller.reregister(raw_fd(&self.client), 0, want)?;
            self.client_interest = want;
        }
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else { continue };
            let want = Interest { readable: client_room, writable: conn.out_pos < conn.out.len() };
            if want != conn.interest {
                // A backend re-register failure is that backend's
                // problem, not the session's.
                if self.poller.reregister(raw_fd(&conn.stream), slot + 1, want).is_ok() {
                    conn.interest = want;
                } else {
                    self.backend_failed(slot, "poller re-registration failed");
                }
            }
        }
        Ok(())
    }

    // ----- client side -----------------------------------------------------

    /// Drain readable client bytes; `Ok(false)` means EOF.
    fn read_client(&mut self) -> io::Result<bool> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if self.closing || self.draining.is_some() {
                return Ok(true);
            }
            match self.client.read(&mut chunk) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    let mut lines: Vec<ScanLine> = Vec::new();
                    self.scanner.feed(&chunk[..n], |line| lines.push(line));
                    for line in lines {
                        self.handle_client_line(line);
                        if self.closing || self.draining.is_some() {
                            return Ok(true);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
            if self.buffered_client() >= MAX_BUFFER {
                return Ok(true);
            }
        }
    }

    fn handle_client_line(&mut self, line: ScanLine) {
        let parsed = match line {
            ScanLine::TooLong { len } => {
                let e = ProtocolError::LineTooLong { len };
                self.push_err(e.code(), None, e.to_string());
                return;
            }
            ScanLine::Line(raw) => match String::from_utf8(raw) {
                Err(_) => {
                    let e = ProtocolError::NotUtf8;
                    self.push_err(e.code(), None, e.to_string());
                    return;
                }
                Ok(text) => match parse_request(&text) {
                    Err(ProtocolError::Empty) => return,
                    Err(e) => {
                        self.push_err(e.code(), salvage_tag(&text), e.to_string());
                        return;
                    }
                    Ok(req) => req,
                },
            },
        };
        let needs_auth = self.shared.tenants.auth_enabled() && !self.authed;
        if needs_auth && !matches!(parsed, Request::Auth { .. }) {
            self.push_err(ErrorCode::AuthRequired, None, "authenticate first: AUTH token=<token>");
            self.closing = true;
            return;
        }
        match parsed {
            Request::Auth { token, tag } => self.handle_auth(token, tag),
            Request::Gen(spec) => self.route_gen(spec),
            Request::Sub(spec) => self.route_sub(spec),
            Request::Cancel { tag } => self.handle_cancel(tag),
            Request::Stats { tag } => self.start_aggregate(AggKind::Stats, tag),
            Request::Metrics { tag } => self.start_aggregate(AggKind::Metrics, tag),
            Request::Models { tag } => self.start_aggregate(AggKind::Models, tag),
            Request::Ping { tag } => self.push_reply(ReplyHeader::Pong { tag }, &[]),
            Request::Quit { tag } => {
                self.draining = Some(Instant::now() + QUIT_DRAIN);
                self.drain_tag = tag;
            }
        }
    }

    fn handle_auth(&mut self, token: String, tag: Option<String>) {
        if !self.shared.tenants.auth_enabled() {
            self.push_reply(ReplyHeader::Auth { tag, tenant: self.tenant_id.clone() }, &[]);
            return;
        }
        if self.authed {
            self.push_err(ErrorCode::BadRequest, tag, "connection is already authenticated");
            return;
        }
        match self.shared.tenants.authenticate(&token) {
            Some(tenant) => {
                let id = tenant.id().to_string();
                self.shared.logger.info(
                    "serve.router",
                    "connection authenticated",
                    &[("tenant", id.clone())],
                );
                self.tenant_id = id.clone();
                self.authed = true;
                self.push_reply(ReplyHeader::Auth { tag, tenant: id }, &[]);
            }
            None => {
                self.shared.logger.warn("serve.router", "auth failed: invalid token", &[]);
                self.push_err(ErrorCode::AuthFailed, tag, "invalid token");
                self.closing = true;
            }
        }
    }

    fn inflight_total(&self) -> usize {
        self.inflight.len() + self.untagged.len()
    }

    /// The placement key of `(model, seed)`: fingerprint when known,
    /// name hash until then (converges once any `MODELS` listing has
    /// been seen).
    fn placement_key(&self, model: &str, seed: u64) -> u64 {
        let model_key = self
            .shared
            .fingerprints
            .lock()
            .expect("fingerprint map poisoned")
            .get(model)
            .copied()
            .unwrap_or_else(|| hash_bytes(model.as_bytes()));
        self.shared.pool.request_key(model_key, seed)
    }

    /// Dial backend `slot` if this session has no connection to it yet.
    fn ensure_conn(&mut self, slot: usize) -> io::Result<()> {
        if self.conns[slot].is_some() {
            return Ok(());
        }
        let meta = Arc::clone(self.shared.pool.get(slot));
        match connect_ready(&meta.addr(), self.shared.dial_timeout) {
            Ok(stream) => {
                self.poller.register(raw_fd(&stream), slot + 1, Interest::READABLE)?;
                self.conns[slot] = Some(BackendConn::new(stream));
                meta.mark_up();
                Ok(())
            }
            Err(e) => {
                meta.note_dial_failure();
                meta.mark_down();
                self.shared.logger.warn(
                    "serve.router",
                    "backend dial failed",
                    &[("backend", meta.addr().to_string()), ("error", e.to_string())],
                );
                Err(e)
            }
        }
    }

    /// Pick (and connect) the backend for `key`: the full-fleet
    /// placement when that node is up (or probes back up), otherwise
    /// rendezvous over the healthy subset.
    fn acquire_backend(&mut self, key: u64, exclude: Option<usize>) -> Option<usize> {
        if exclude.is_none() {
            if let Some(home) = self.shared.pool.place(key) {
                let meta = self.shared.pool.get(home);
                if (meta.is_up() || meta.take_reprobe_slot()) && self.ensure_conn(home).is_ok() {
                    return Some(home);
                }
            }
        }
        // Each failed dial marks its backend down, shrinking the
        // healthy set, so this terminates within pool-size attempts.
        for _ in 0..self.shared.pool.len() {
            let slot = self.shared.pool.place_healthy(key, exclude)?;
            if self.ensure_conn(slot).is_ok() {
                return Some(slot);
            }
        }
        None
    }

    /// Queue `line` on backend `slot` and flush eagerly; a write
    /// failure routes through the failover path (which sees whatever
    /// entry the caller just recorded).
    fn send_backend(&mut self, slot: usize, line: &str) {
        if let Some(conn) = self.conns[slot].as_mut() {
            conn.out.reserve(line.len() + 1);
            conn.out.extend_from_slice(line.as_bytes());
            conn.out.push(b'\n');
        }
        if let Err(e) = self.flush_backend(slot) {
            self.backend_failed(slot, &e.to_string());
        }
    }

    /// Reject a client-stamped `trace=` (the same trust rule as
    /// `tenant=`: it is an internal-hop assertion, and the client side
    /// of the router is never an internal hop), then mint the request's
    /// trace id — the router is the first tier to see the request.
    fn resolve_trace(&mut self, asserted: &Option<String>, tag: Option<&str>) -> Option<String> {
        if asserted.is_some() {
            self.push_err(
                ErrorCode::InvalidRequest,
                tag.map(str::to_string),
                "trace= is an internal-hop assertion; this frontend does not trust it",
            );
            return None;
        }
        Some(mint_trace_id())
    }

    /// Record the router's relay span of one finished request: `dial`
    /// (backend acquisition, including failover re-dials), `relay`
    /// (request dispatched → terminal frame), `total`.
    #[allow(clippy::too_many_arguments)]
    fn record_route_span(
        &self,
        trace: &str,
        model: &str,
        seed: u64,
        outcome: &'static str,
        slot: Option<usize>,
        dial_ms: f64,
        t0: Instant,
    ) {
        let model_fp =
            self.shared.fingerprints.lock().expect("fingerprint map poisoned").get(model).copied();
        let relay_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.shared.spans.record(Span {
            trace: trace.to_string(),
            tier: "route",
            parent: None,
            tenant: Some(self.tenant_id.clone()),
            model: model.to_string(),
            model_fp,
            seed,
            outcome,
            backend: slot.map(|s| self.shared.pool.get(s).addr().to_string()),
            stages_ms: vec![("dial", dial_ms), ("relay", relay_ms), ("total", dial_ms + relay_ms)],
        });
    }

    fn route_gen(&mut self, mut spec: GenSpec) {
        if let Some(tag) = &spec.tag {
            if self.inflight.contains_key(tag) || self.agg_pending.contains_key(tag) {
                let message = format!("tag {tag} is already in flight on this connection");
                self.push_err(ErrorCode::DuplicateTag, Some(tag.clone()), message);
                return;
            }
        }
        if self.inflight_total() >= self.shared.max_inflight {
            let message =
                format!("inflight={} cap={}", self.inflight_total(), self.shared.max_inflight);
            self.push_err(ErrorCode::TooManyInflight, spec.tag.clone(), message);
            return;
        }
        let Some(trace) = self.resolve_trace(&spec.trace, spec.tag.as_deref()) else { return };
        if self.shared.tenants.auth_enabled() {
            spec.tenant = Some(self.tenant_id.clone());
        }
        spec.trace = Some(trace.clone());
        let key = self.placement_key(&spec.model, spec.seed);
        let dial_t0 = Instant::now();
        let Some(slot) = self.acquire_backend(key, None) else {
            let dial_ms = dial_t0.elapsed().as_secs_f64() * 1e3;
            self.record_route_span(
                &trace,
                &spec.model,
                spec.seed,
                "error",
                None,
                dial_ms,
                Instant::now(),
            );
            self.push_err(
                ErrorCode::BackendUnavailable,
                spec.tag.clone(),
                "no healthy backend for this request",
            );
            return;
        };
        let dial_ms = dial_t0.elapsed().as_secs_f64() * 1e3;
        let line = Request::Gen(spec.clone()).to_line();
        let t0 = Instant::now();
        match spec.tag.clone() {
            Some(tag) => {
                let kind = EntryKind::Gen { line: line.clone(), attempts: 0 };
                self.inflight.insert(
                    tag,
                    Entry {
                        slot,
                        kind,
                        t0,
                        trace,
                        model: spec.model.clone(),
                        seed: spec.seed,
                        dial_ms,
                    },
                );
            }
            None => self.untagged.push(UntaggedGen {
                slot,
                line: line.clone(),
                attempts: 0,
                model: spec.model,
                t_len: spec.t_len,
                seed: spec.seed,
                fmt: spec.fmt,
                t0,
                trace,
                dial_ms,
            }),
        }
        self.send_backend(slot, &line);
    }

    fn route_sub(&mut self, mut spec: GenSpec) {
        // The trace assertion is checked first (like the reactor: before
        // the ack or any tag assignment) so a rejected hop never opens
        // a stream and the ERR carries the client's own tag.
        let Some(trace) = self.resolve_trace(&spec.trace, spec.tag.as_deref()) else { return };
        // Tags are assigned at the *router* for untagged SUBs: two
        // backends would otherwise both hand out `~1` on their own
        // connections and collide at the client's demux. The numbering
        // mirrors the reactor's, so the client sees the same tags a
        // direct connection would produce.
        let tag = match spec.tag.clone() {
            Some(tag) => {
                if self.inflight.contains_key(&tag) || self.agg_pending.contains_key(&tag) {
                    let message = format!("tag {tag} is already in flight on this connection");
                    self.push_err(ErrorCode::DuplicateTag, Some(tag), message);
                    return;
                }
                tag
            }
            None => loop {
                self.auto_tag += 1;
                let candidate = format!("~{}", self.auto_tag);
                if !self.inflight.contains_key(&candidate)
                    && !self.agg_pending.contains_key(&candidate)
                {
                    break candidate;
                }
            },
        };
        if self.inflight_total() >= self.shared.max_inflight {
            let message =
                format!("inflight={} cap={}", self.inflight_total(), self.shared.max_inflight);
            self.push_err(ErrorCode::TooManyInflight, Some(tag), message);
            return;
        }
        spec.tag = Some(tag.clone());
        if self.shared.tenants.auth_enabled() {
            spec.tenant = Some(self.tenant_id.clone());
        }
        spec.trace = Some(trace.clone());
        let key = self.placement_key(&spec.model, spec.seed);
        let dial_t0 = Instant::now();
        let Some(slot) = self.acquire_backend(key, None) else {
            let dial_ms = dial_t0.elapsed().as_secs_f64() * 1e3;
            self.record_route_span(
                &trace,
                &spec.model,
                spec.seed,
                "error",
                None,
                dial_ms,
                Instant::now(),
            );
            self.push_err(
                ErrorCode::BackendUnavailable,
                Some(tag),
                "no healthy backend for this request",
            );
            return;
        };
        let dial_ms = dial_t0.elapsed().as_secs_f64() * 1e3;
        let model = spec.model.clone();
        let seed = spec.seed;
        let line = Request::Sub(spec).to_line();
        self.inflight.insert(
            tag,
            Entry { slot, kind: EntryKind::Sub, t0: Instant::now(), trace, model, seed, dial_ms },
        );
        self.send_backend(slot, &line);
    }

    fn handle_cancel(&mut self, tag: String) {
        match self.inflight.get(&tag) {
            // The backend owns the stream's termination: its
            // `OK CANCEL` (and the stream's END) relay back verbatim.
            Some(entry) => {
                let slot = entry.slot;
                let line = Request::Cancel { tag }.to_line();
                self.send_backend(slot, &line);
            }
            None => self.push_reply(ReplyHeader::Cancel { tag, found: false }, &[]),
        }
    }

    // ----- aggregation -----------------------------------------------------

    fn next_internal_tag(&mut self) -> String {
        loop {
            self.agg_tag += 1;
            let candidate = format!("~a{}", self.agg_tag);
            if !self.inflight.contains_key(&candidate) && !self.agg_pending.contains_key(&candidate)
            {
                return candidate;
            }
        }
    }

    fn start_aggregate(&mut self, kind: AggKind, client_tag: Option<String>) {
        let id = self.next_agg;
        self.next_agg += 1;
        let slots = self.shared.pool.len();
        let mut parts: Vec<Part> = Vec::with_capacity(slots);
        let mut sends: Vec<(usize, String)> = Vec::new();
        let mut remaining = 0usize;
        for slot in 0..slots {
            let meta = Arc::clone(self.shared.pool.get(slot));
            let reachable =
                (meta.is_up() || meta.take_reprobe_slot()) && self.ensure_conn(slot).is_ok();
            if reachable {
                let itag = self.next_internal_tag();
                self.agg_pending.insert(itag.clone(), (id, slot));
                sends.push((slot, itag));
                parts.push(Part::Waiting);
                remaining += 1;
            } else {
                parts.push(Part::Down(meta.addr().to_string()));
            }
        }
        self.aggs.insert(id, Aggregate { kind, client_tag, parts, remaining });
        for (slot, itag) in sends {
            let line = match kind {
                AggKind::Stats => format!("STATS tag={itag}"),
                AggKind::Metrics => format!("METRICS tag={itag}"),
                AggKind::Models => format!("MODELS tag={itag}"),
            };
            self.send_backend(slot, &line);
        }
        self.finish_aggregate_if_ready(id);
    }

    fn resolve_aggregate_part(&mut self, itag: &str, part: Part) {
        let Some((id, slot)) = self.agg_pending.remove(itag) else { return };
        if let Some(agg) = self.aggs.get_mut(&id) {
            if matches!(agg.parts[slot], Part::Waiting) {
                agg.parts[slot] = part;
                agg.remaining -= 1;
            }
        }
        self.finish_aggregate_if_ready(id);
    }

    fn finish_aggregate_if_ready(&mut self, id: u64) {
        let done = self.aggs.get(&id).is_some_and(|agg| agg.remaining == 0);
        if !done {
            return;
        }
        let agg = self.aggs.remove(&id).expect("aggregate vanished");
        let payload = match agg.kind {
            AggKind::Stats => render_stats_aggregate(&self.shared, &agg.parts),
            AggKind::Models => {
                // A MODELS sweep doubles as a fingerprint refresh, so
                // placement self-heals after model re-registration.
                for part in &agg.parts {
                    if let Part::Payload(bytes) = part {
                        learn_fingerprints(&self.shared, bytes);
                    }
                }
                render_models_aggregate(&agg.parts)
            }
            AggKind::Metrics => {
                // Own registry merges in as one more input so shared
                // families (`vrdag_build_info`) do not duplicate —
                // mirrors [`Router::metrics_text`] exactly.
                let own = self.shared.metrics.render();
                let texts: Vec<&str> = agg
                    .parts
                    .iter()
                    .filter_map(|p| match p {
                        Part::Payload(bytes) => std::str::from_utf8(bytes).ok(),
                        _ => None,
                    })
                    .chain(std::iter::once(own.as_str()))
                    .collect();
                merge_prometheus(&texts).into_bytes()
            }
        };
        let bytes = payload.len();
        let header = match agg.kind {
            AggKind::Stats => ReplyHeader::Stats { tag: agg.client_tag, bytes },
            AggKind::Metrics => ReplyHeader::Metrics { tag: agg.client_tag, bytes },
            AggKind::Models => ReplyHeader::Models { tag: agg.client_tag, bytes },
        };
        self.push_reply(header, &payload);
    }

    // ----- backend side ----------------------------------------------------

    /// Drain readable bytes from backend `slot`, relaying complete
    /// frames. `Err` means the backend connection is gone.
    fn read_backend(&mut self, slot: usize) -> io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let mut frames: Vec<BackendFrame> = Vec::new();
            {
                let Some(conn) = self.conns[slot].as_mut() else { return Ok(()) };
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "backend closed the connection",
                        ))
                    }
                    Ok(n) => {
                        conn.scanner
                            .feed(&chunk[..n], &mut frames)
                            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            for frame in frames {
                self.handle_backend_frame(slot, frame);
            }
            if self.buffered_client() >= MAX_BUFFER {
                return Ok(());
            }
        }
    }

    fn handle_backend_frame(&mut self, slot: usize, frame: BackendFrame) {
        if let Some(tag) = frame.header.tag() {
            if self.agg_pending.contains_key(tag) {
                let itag = tag.to_string();
                let part = match &frame.header {
                    ReplyHeader::Err { message, .. } => Part::Down(format!(
                        "{} answered ERR: {message}",
                        self.shared.pool.get(slot).addr()
                    )),
                    _ => Part::Payload(frame.payload),
                };
                self.resolve_aggregate_part(&itag, part);
                return;
            }
        }
        // Everything else relays verbatim: raw header line + payload,
        // exactly as the backend framed them.
        self.push_client_bytes(frame.raw.clone().as_bytes());
        self.push_client_bytes(b"\n");
        self.push_client_bytes(&frame.payload);
        self.shared.relayed_frames.inc();
        // Terminal-frame bookkeeping: observe the relay latency and
        // record the router's relay span under the request's trace id
        // (the backend recorded its serve-tier span under the same id).
        match &frame.header {
            ReplyHeader::Gen { tag: Some(tag), .. } | ReplyHeader::End { tag, .. } => {
                let outcome = match &frame.header {
                    ReplyHeader::End { status: EndStatus::Cancelled, .. } => "cancelled",
                    _ => "ok",
                };
                if let Some(entry) = self.inflight.remove(tag.as_str()) {
                    self.shared.relay_seconds.observe(entry.t0.elapsed().as_secs_f64());
                    self.record_route_span(
                        &entry.trace,
                        &entry.model,
                        entry.seed,
                        outcome,
                        Some(entry.slot),
                        entry.dial_ms,
                        entry.t0,
                    );
                }
            }
            ReplyHeader::Err { tag: Some(tag), .. } => {
                if let Some(entry) = self.inflight.remove(tag.as_str()) {
                    self.shared.relay_seconds.observe(entry.t0.elapsed().as_secs_f64());
                    self.record_route_span(
                        &entry.trace,
                        &entry.model,
                        entry.seed,
                        "error",
                        Some(entry.slot),
                        entry.dial_ms,
                        entry.t0,
                    );
                }
            }
            ReplyHeader::Gen { tag: None, model, t_len, seed, fmt, .. } => {
                if let Some(at) = self.untagged.iter().position(|u| {
                    u.slot == slot
                        && u.model == *model
                        && u.t_len == *t_len
                        && u.seed == *seed
                        && u.fmt == *fmt
                }) {
                    let u = self.untagged.remove(at);
                    self.shared.relay_seconds.observe(u.t0.elapsed().as_secs_f64());
                    self.record_route_span(
                        &u.trace,
                        &u.model,
                        u.seed,
                        "ok",
                        Some(u.slot),
                        u.dial_ms,
                        u.t0,
                    );
                }
            }
            ReplyHeader::Err { tag: None, .. } => {
                // No tag to match: resolve the oldest untagged job on
                // this backend (untagged replies are inherently
                // ambiguous — same as on a direct connection).
                if let Some(at) = self.untagged.iter().position(|u| u.slot == slot) {
                    let u = self.untagged.remove(at);
                    self.shared.relay_seconds.observe(u.t0.elapsed().as_secs_f64());
                    self.record_route_span(
                        &u.trace,
                        &u.model,
                        u.seed,
                        "error",
                        Some(u.slot),
                        u.dial_ms,
                        u.t0,
                    );
                }
            }
            _ => {}
        }
    }

    /// Backend `slot` died: mark it down, fail streams cleanly, retry
    /// idempotent `GEN`s with bounded backoff, and resolve any
    /// aggregate parts it still owed.
    fn backend_failed(&mut self, slot: usize, error: &str) {
        let meta = Arc::clone(self.shared.pool.get(slot));
        meta.mark_down();
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.deregister(raw_fd(&conn.stream), slot + 1);
        }
        self.shared.logger.warn(
            "serve.router",
            "backend connection failed",
            &[("backend", meta.addr().to_string()), ("error", error.to_string())],
        );
        let addr = meta.addr().to_string();
        // Streams: frames may already have reached the client, so the
        // stream cannot be replayed — terminate it cleanly instead.
        let dead_tags: Vec<String> = self
            .inflight
            .iter()
            .filter(|(_, e)| e.slot == slot)
            .map(|(tag, _)| tag.clone())
            .collect();
        for tag in dead_tags {
            let entry = self.inflight.remove(&tag).expect("inflight entry vanished");
            match entry.kind {
                EntryKind::Sub => {
                    self.record_route_span(
                        &entry.trace,
                        &entry.model,
                        entry.seed,
                        "error",
                        Some(slot),
                        entry.dial_ms,
                        entry.t0,
                    );
                    self.push_err(
                        ErrorCode::BackendUnavailable,
                        Some(tag),
                        format!("backend {addr} failed mid-stream; resubscribe to retry"),
                    );
                }
                EntryKind::Gen { line, attempts } => {
                    self.retry_gen(Some(tag), line, attempts, entry.t0, entry.dial_ms, slot);
                }
            }
        }
        let dead_untagged: Vec<UntaggedGen> = {
            let mut kept = Vec::new();
            let mut dead = Vec::new();
            for u in self.untagged.drain(..) {
                if u.slot == slot {
                    dead.push(u);
                } else {
                    kept.push(u);
                }
            }
            self.untagged = kept;
            dead
        };
        for u in dead_untagged {
            self.retry_untagged(u, slot);
        }
        // Aggregate parts this backend still owed become a down note.
        let owed: Vec<String> = self
            .agg_pending
            .iter()
            .filter(|(_, &(_, s))| s == slot)
            .map(|(itag, _)| itag.clone())
            .collect();
        for itag in owed {
            self.resolve_aggregate_part(&itag, Part::Down(format!("{addr} (unreachable)")));
        }
    }

    /// Re-place one tagged `GEN` whose backend died. The backoff sleep
    /// blocks only this session's thread.
    fn retry_gen(
        &mut self,
        tag: Option<String>,
        line: String,
        attempts: u32,
        t0: Instant,
        dial_ms: f64,
        dead: usize,
    ) {
        let attempts = attempts + 1;
        // The internal-hop line carries the trace= stamp, so a replay
        // keeps (and a failure span records) the original trace id.
        let Ok(Request::Gen(spec)) = parse_request(&line) else {
            self.push_err(ErrorCode::Internal, tag, "unreplayable relay line");
            return;
        };
        let trace = spec.trace.clone().unwrap_or_default();
        if attempts > self.shared.gen_retries {
            self.record_route_span(&trace, &spec.model, spec.seed, "error", None, dial_ms, t0);
            self.push_err(
                ErrorCode::BackendUnavailable,
                tag,
                format!("backend failed and retries ({}) are exhausted", self.shared.gen_retries),
            );
            return;
        }
        self.shared.retries.inc();
        std::thread::sleep(self.shared.retry_backoff * attempts);
        let key = self.placement_key(&spec.model, spec.seed);
        let dial_t0 = Instant::now();
        let Some(slot) = self.acquire_backend(key, Some(dead)) else {
            let dial_ms = dial_ms + dial_t0.elapsed().as_secs_f64() * 1e3;
            self.record_route_span(&trace, &spec.model, spec.seed, "error", None, dial_ms, t0);
            self.push_err(
                ErrorCode::BackendUnavailable,
                tag,
                "no healthy backend left for this request",
            );
            return;
        };
        let dial_ms = dial_ms + dial_t0.elapsed().as_secs_f64() * 1e3;
        match tag {
            Some(tag) => {
                let kind = EntryKind::Gen { line: line.clone(), attempts };
                self.inflight.insert(
                    tag,
                    Entry {
                        slot,
                        kind,
                        t0,
                        trace,
                        model: spec.model.clone(),
                        seed: spec.seed,
                        dial_ms,
                    },
                );
            }
            None => self.untagged.push(UntaggedGen {
                slot,
                line: line.clone(),
                attempts,
                model: spec.model,
                t_len: spec.t_len,
                seed: spec.seed,
                fmt: spec.fmt,
                t0,
                trace,
                dial_ms,
            }),
        }
        self.send_backend(slot, &line);
    }

    fn retry_untagged(&mut self, u: UntaggedGen, dead: usize) {
        self.retry_gen(None, u.line, u.attempts, u.t0, u.dial_ms, dead);
    }

    // ----- teardown --------------------------------------------------------

    /// After `QUIT`: once nothing is in flight (or the drain deadline
    /// passes), acknowledge and flush-close.
    fn check_drain(&mut self) {
        let Some(deadline) = self.draining else { return };
        let drained =
            self.inflight_total() == 0 && self.aggs.is_empty() && self.agg_pending.is_empty();
        if drained || Instant::now() >= deadline {
            let tag = self.drain_tag.take();
            self.push_reply(ReplyHeader::Bye { tag }, &[]);
            self.draining = None;
            self.closing = true;
        }
    }
}

// ----- aggregate rendering (pure helpers, unit-tested below) ---------------

/// Counters harvested from one backend's rendered stats payload.
#[derive(Default)]
struct ParsedStats {
    submitted: u64,
    completed: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// id → (submitted, completed, failed, cancelled, rejected, KiB).
    tenants: Vec<(String, [u64; 6])>,
}

/// Parse the counters the aggregate sums out of one
/// `ServeStats::render()` payload. The format is our own (stable,
/// loopback-tested); anything unparseable is skipped, never fatal.
fn parse_backend_stats(text: &str) -> ParsedStats {
    let mut out = ParsedStats::default();
    let mut in_tenants = false;
    for line in text.lines() {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if line.starts_with("serve: ") && tokens.len() >= 5 {
            // serve: A submitted / B completed (...)
            out.submitted = tokens[1].parse().unwrap_or(0);
            out.completed = tokens[4].parse().unwrap_or(0);
        } else if tokens.first() == Some(&"cache:") && tokens.len() >= 6 {
            // cache: H hits / M misses (...)
            out.cache_hits = tokens[1].parse().unwrap_or(0);
            out.cache_misses = tokens[4].parse().unwrap_or(0);
        } else if line.trim_end() == "  tenants:" {
            in_tenants = true;
        } else if in_tenants && line.starts_with("    ") && tokens.len() >= 14 {
            // id w=K A submitted / B completed (C failed, D cancelled,
            // E rejected) KIB KiB streamed p50 ...
            let id = tokens[0].to_string();
            let nums = [
                tokens[2].parse().unwrap_or(0),
                tokens[5].parse().unwrap_or(0),
                tokens[7].trim_start_matches('(').parse().unwrap_or(0),
                tokens[9].parse().unwrap_or(0),
                tokens[11].parse().unwrap_or(0),
                tokens[13].parse().unwrap_or(0),
            ];
            out.tenants.push((id, nums));
        } else if in_tenants && !line.starts_with("    ") {
            in_tenants = false;
        }
    }
    out
}

fn render_stats_aggregate(shared: &Shared, parts: &[Part]) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut totals = ParsedStats::default();
    let mut tenant_sums: Vec<(String, [u64; 6])> = Vec::new();
    let parsed: Vec<Option<ParsedStats>> = parts
        .iter()
        .map(|part| match part {
            Part::Payload(bytes) => {
                let stats = parse_backend_stats(&String::from_utf8_lossy(bytes));
                totals.submitted += stats.submitted;
                totals.completed += stats.completed;
                totals.cache_hits += stats.cache_hits;
                totals.cache_misses += stats.cache_misses;
                for (id, nums) in &stats.tenants {
                    match tenant_sums.iter_mut().find(|(i, _)| i == id) {
                        Some((_, acc)) => {
                            for (a, n) in acc.iter_mut().zip(nums) {
                                *a += n;
                            }
                        }
                        None => tenant_sums.push((id.clone(), *nums)),
                    }
                }
                Some(stats)
            }
            _ => None,
        })
        .collect();
    drop(parsed);
    tenant_sums.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "route: {} backends ({} up)  {} submitted / {} completed across the fleet",
        parts.len(),
        shared.pool.up_count(),
        totals.submitted,
        totals.completed,
    );
    let _ = writeln!(
        out,
        "  cache: {} hits / {} misses fleet-wide",
        totals.cache_hits, totals.cache_misses
    );
    if !tenant_sums.is_empty() {
        let _ = writeln!(out, "  tenants (summed across backends):");
        for (id, [submitted, completed, failed, cancelled, rejected, kib]) in &tenant_sums {
            let _ = writeln!(
                out,
                "    {id:<16} {submitted} submitted / {completed} completed ({failed} failed, {cancelled} cancelled, {rejected} rejected)  {kib} KiB streamed",
            );
        }
    }
    for (slot, part) in parts.iter().enumerate() {
        let addr = shared.pool.get(slot).addr();
        match part {
            Part::Payload(bytes) => {
                let _ = writeln!(out, "--- backend {addr} ---");
                out.push_str(&String::from_utf8_lossy(bytes));
                if !out.ends_with('\n') {
                    out.push('\n');
                }
            }
            Part::Down(note) => {
                let _ = writeln!(out, "--- backend {addr} DOWN ({note}) ---");
            }
            Part::Waiting => {
                let _ = writeln!(out, "--- backend {addr} (no reply) ---");
            }
        }
    }
    out.into_bytes()
}

/// Union of the backends' model listings, deduplicated and sorted — on
/// a healthy fleet every backend serves the same models, so the merge
/// is the common listing (a divergent fleet shows the union, which is
/// the honest answer).
fn render_models_aggregate(parts: &[Part]) -> Vec<u8> {
    let mut lines: Vec<String> = Vec::new();
    for part in parts {
        if let Part::Payload(bytes) = part {
            for line in String::from_utf8_lossy(bytes).lines() {
                if !line.trim().is_empty() && !lines.iter().any(|l| l == line) {
                    lines.push(line.to_string());
                }
            }
        }
    }
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out.into_bytes()
}

/// Merge Prometheus text expositions by summing series with identical
/// names+labels across backends (counters and histogram buckets sum
/// exactly; summed gauges read as fleet totals). `# TYPE`/`# HELP`
/// comment lines are kept once. Order is first-seen, so the merge of
/// deterministic inputs is deterministic.
fn merge_prometheus(texts: &[&str]) -> String {
    enum Item {
        Comment(String),
        Series(String),
    }
    let mut order: Vec<Item> = Vec::new();
    let mut sums: HashMap<String, f64> = HashMap::new();
    let mut seen_comments: Vec<String> = Vec::new();
    for text in texts {
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if line.starts_with('#') {
                if !seen_comments.iter().any(|c| c == line) {
                    seen_comments.push(line.to_string());
                    order.push(Item::Comment(line.to_string()));
                }
                continue;
            }
            let Some((series, value)) = line.rsplit_once(' ') else { continue };
            let Ok(v) = value.parse::<f64>() else { continue };
            match sums.get_mut(series) {
                Some(acc) => *acc += v,
                None => {
                    sums.insert(series.to_string(), v);
                    order.push(Item::Series(series.to_string()));
                }
            }
        }
    }
    let mut out = String::new();
    for item in order {
        match item {
            Item::Comment(line) => {
                out.push_str(&line);
                out.push('\n');
            }
            Item::Series(series) => {
                let v = sums[&series];
                out.push_str(&series);
                out.push(' ');
                if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    out.push_str(&format!("{}", v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_stats_parse_and_sum() {
        let a = "serve: 7 submitted / 6 completed (1 failed, 0 cancelled, 0 dropped) on 2 workers in 1.000s  (peak 2 in flight, 0 queued now)\n  throughput: 12 snapshots / 30 edges total\n  cache: 3 hits / 4 misses (43% hit rate), 0 evictions, 4 entries / 12 KiB resident\n  tenants:\n    gold             w=3  5 submitted / 4 completed (1 failed, 0 cancelled, 0 rejected)  18 KiB streamed  p50 1.00ms p95 2.00ms\n    bronze           w=1  2 submitted / 2 completed (0 failed, 0 cancelled, 2 rejected)  6 KiB streamed  p50 1.00ms p95 2.00ms\n";
        let parsed = parse_backend_stats(a);
        assert_eq!(parsed.submitted, 7);
        assert_eq!(parsed.completed, 6);
        assert_eq!(parsed.cache_hits, 3);
        assert_eq!(parsed.cache_misses, 4);
        assert_eq!(parsed.tenants.len(), 2);
        let gold = parsed.tenants.iter().find(|(id, _)| id == "gold").unwrap();
        assert_eq!(gold.1, [5, 4, 1, 0, 0, 18]);
        let bronze = parsed.tenants.iter().find(|(id, _)| id == "bronze").unwrap();
        assert_eq!(bronze.1, [2, 2, 0, 0, 2, 6]);
    }

    #[test]
    fn prometheus_merge_sums_series_and_keeps_comments_once() {
        let a = "# TYPE vrdag_jobs_total counter\nvrdag_jobs_total{outcome=\"ok\"} 3\nvrdag_open_connections 1\n";
        let b = "# TYPE vrdag_jobs_total counter\nvrdag_jobs_total{outcome=\"ok\"} 4\nvrdag_open_connections 2\nvrdag_jobs_total{outcome=\"failed\"} 1\n";
        let merged = merge_prometheus(&[a, b]);
        let lines: Vec<&str> = merged.lines().collect();
        assert_eq!(
            lines,
            vec![
                "# TYPE vrdag_jobs_total counter",
                "vrdag_jobs_total{outcome=\"ok\"} 7",
                "vrdag_open_connections 3",
                "vrdag_jobs_total{outcome=\"failed\"} 1",
            ]
        );
        // Merging is value-summing, never value-concatenating: floats
        // survive with their fractional part.
        let merged = merge_prometheus(&["x_sum 0.5\n", "x_sum 0.25\n"]);
        assert_eq!(merged, "x_sum 0.75\n");
    }

    #[test]
    fn models_aggregate_dedups_identical_listings() {
        let line = "email nodes=12 attrs=3 size=4096 fingerprint=00000000deadbeef";
        let parts = vec![
            Part::Payload(format!("{line}\n").into_bytes()),
            Part::Payload(format!("{line}\n").into_bytes()),
        ];
        let merged = String::from_utf8(render_models_aggregate(&parts)).unwrap();
        assert_eq!(merged, format!("{line}\n"));
    }

    #[test]
    fn frame_scanner_reassembles_split_payloads() {
        let mut scanner = FrameScanner::default();
        let mut frames = Vec::new();
        // A payload containing '\n' must not confuse the line splitter.
        let wire = b"OK GEN id=1 model=m t=2 seed=0 fmt=tsv snapshots=2 edges=3 cache=miss bytes=8\nab\ncd\nefOK PONG\n";
        for chunk in wire.chunks(5) {
            scanner.feed(chunk, &mut frames).unwrap();
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].payload, b"ab\ncd\nef");
        assert!(matches!(frames[0].header, ReplyHeader::Gen { bytes: 8, .. }));
        assert!(matches!(frames[1].header, ReplyHeader::Pong { tag: None }));
        assert_eq!(frames[1].raw, "OK PONG");
    }

    #[test]
    fn frame_scanner_rejects_oversized_headers() {
        let mut scanner = FrameScanner::default();
        let mut frames = Vec::new();
        let junk = vec![b'x'; MAX_LINE_BYTES + 2];
        assert!(scanner.feed(&junk, &mut frames).is_err());
    }
}

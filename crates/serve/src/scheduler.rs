//! Concurrent execution of batched generation requests: a [`JobQueue`]
//! drained by a fixed pool of `std::thread` workers.
//!
//! Each worker keeps a private cache of instantiated models keyed by
//! registered name (invalidated when the artifact is re-registered), so
//! a batch of `k` jobs against one model pays the deserialization cost
//! once per worker, not once per job. Peak memory is bounded by one
//! in-flight snapshot per worker for the streaming sinks
//! ([`GenSink::TsvFile`], [`GenSink::BinaryFile`], [`GenSink::Callback`],
//! [`GenSink::Discard`]); only [`GenSink::InMemory`] materializes a full
//! sequence, by request.

use crate::registry::{ModelHandle, ModelRegistry};
use crate::stream::StreamStats;
use crate::ServeError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::io::BufWriter;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use vrdag::Vrdag;
use vrdag_graph::io::{BinaryStreamWriter, TsvStreamWriter};
use vrdag_graph::{DynamicGraph, Snapshot};

/// Per-snapshot streaming consumer (see [`GenSink::Callback`]).
pub type SnapshotCallback = Box<dyn FnMut(usize, &Snapshot) + Send>;

/// Where a job's snapshots go, one at a time.
pub enum GenSink {
    /// Stream to a TSV file (`vrdag_graph::io` temporal format),
    /// flushed per snapshot.
    TsvFile(PathBuf),
    /// Stream to a compact binary file, flushed per snapshot.
    BinaryFile(PathBuf),
    /// Hand each `(timestep, snapshot)` to a consumer as it is produced.
    Callback(SnapshotCallback),
    /// Collect the full sequence into [`JobResult::graph`] (unbounded
    /// memory — intended for small sequences and tests).
    InMemory,
    /// Generate and drop (throughput measurement).
    Discard,
}

impl std::fmt::Debug for GenSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenSink::TsvFile(p) => f.debug_tuple("TsvFile").field(p).finish(),
            GenSink::BinaryFile(p) => f.debug_tuple("BinaryFile").field(p).finish(),
            GenSink::Callback(_) => f.write_str("Callback(..)"),
            GenSink::InMemory => f.write_str("InMemory"),
            GenSink::Discard => f.write_str("Discard"),
        }
    }
}

/// A batched, seed-addressed generation request.
#[derive(Debug)]
pub struct GenRequest {
    /// Registered model name (resolved against the registry at submit
    /// time, so unknown names fail fast).
    pub model: String,
    /// Number of snapshots to generate.
    pub t_len: usize,
    /// Determinism address: the same `(model, t_len, seed)` always yields
    /// the same sequence, regardless of which worker runs it.
    pub seed: u64,
    /// Where the snapshots go.
    pub sink: GenSink,
}

/// Opaque job identifier (submission order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

struct Job {
    id: JobId,
    handle: ModelHandle,
    t_len: usize,
    seed: u64,
    sink: GenSink,
}

/// Outcome and throughput of one executed job.
#[derive(Debug)]
pub struct JobResult {
    pub id: JobId,
    pub model: String,
    pub t_len: usize,
    pub seed: u64,
    /// Snapshots produced (`t_len` on success; 0 on failure — a failed
    /// file-sink job also has its partial output file removed).
    pub snapshots: usize,
    /// Total temporal edges produced.
    pub edges: usize,
    /// Wall-clock job duration in seconds (excluding queue wait).
    pub seconds: f64,
    /// Generation rate of this job.
    pub snapshots_per_sec: f64,
    /// The generated sequence, for [`GenSink::InMemory`] jobs.
    pub graph: Option<DynamicGraph>,
    /// Error message if the job failed.
    pub error: Option<String>,
}

impl JobResult {
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Aggregate statistics of a drained batch.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, in completion order.
    pub jobs: Vec<JobResult>,
    /// Wall-clock from scheduler creation to drain.
    pub total_seconds: f64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Snapshots per wall-clock second across all workers.
    pub snapshots_per_sec: f64,
    /// Highest number of jobs that were executing simultaneously —
    /// `>= 2` demonstrates actual concurrency.
    pub max_in_flight: usize,
    /// Number of workers the pool ran.
    pub workers: usize,
}

impl BatchReport {
    pub fn all_ok(&self) -> bool {
        self.jobs.iter().all(JobResult::is_ok)
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch: {} jobs on {} workers in {:.3}s  ({:.2} jobs/s, {:.1} snapshots/s, peak {} in flight)",
            self.jobs.len(),
            self.workers,
            self.total_seconds,
            self.jobs_per_sec,
            self.snapshots_per_sec,
            self.max_in_flight,
        );
        for j in &self.jobs {
            match &j.error {
                None => {
                    let _ = writeln!(
                        out,
                        "  job {:>3}  model={} t={} seed={}  {:.3}s  {:.1} snapshots/s  {} edges",
                        j.id.0, j.model, j.t_len, j.seed, j.seconds, j.snapshots_per_sec, j.edges
                    );
                }
                Some(e) => {
                    let _ = writeln!(
                        out,
                        "  job {:>3}  model={} t={} seed={}  FAILED: {e}",
                        j.id.0, j.model, j.t_len, j.seed
                    );
                }
            }
        }
        out
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The shared work queue drained by the worker pool. Public so callers
/// can build custom pools; most users go through [`Scheduler`].
pub struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    in_flight: AtomicUsize,
    max_in_flight: AtomicUsize,
}

impl JobQueue {
    pub fn new() -> Self {
        JobQueue {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            max_in_flight: AtomicUsize::new(0),
        }
    }

    fn push(&self, job: Job) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        assert!(!state.closed, "submit after close");
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
    }

    /// Blocks until a job is available or the queue is closed and empty.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                self.max_in_flight.fetch_max(now, Ordering::SeqCst);
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock poisoned");
        }
    }

    fn finish_one(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// No more submissions; wakes idle workers so they can exit.
    fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Highest observed number of simultaneously executing jobs.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight.load(Ordering::SeqCst)
    }
}

impl Default for JobQueue {
    fn default() -> Self {
        Self::new()
    }
}

/// Fixed worker pool executing [`GenRequest`]s from a [`JobQueue`].
pub struct Scheduler {
    registry: ModelRegistry,
    queue: Arc<JobQueue>,
    results: Arc<Mutex<Vec<JobResult>>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    next_id: u64,
    started: Instant,
}

impl Scheduler {
    /// Spawn `workers` threads (min 1) draining a fresh queue.
    pub fn new(registry: ModelRegistry, workers: usize) -> Scheduler {
        let workers = workers.max(1);
        let queue = Arc::new(JobQueue::new());
        let results = Arc::new(Mutex::new(Vec::new()));
        let handles = (0..workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let results = Arc::clone(&results);
                std::thread::Builder::new()
                    .name(format!("vrdag-serve-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &results))
                    .expect("spawn worker thread")
            })
            .collect();
        Scheduler {
            registry,
            queue,
            results,
            workers: handles,
            next_id: 0,
            started: Instant::now(),
        }
    }

    /// The registry this scheduler resolves model names against.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Enqueue a request. Fails fast with
    /// [`ServeError::UnknownModel`] if the model name is not registered.
    pub fn submit(&mut self, req: GenRequest) -> Result<JobId, ServeError> {
        let handle = self.registry.resolve(&req.model)?;
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.queue.push(Job { id, handle, t_len: req.t_len, seed: req.seed, sink: req.sink });
        Ok(id)
    }

    /// Close the queue, wait for every submitted job to finish, and
    /// return the batch report.
    pub fn join(self) -> BatchReport {
        self.queue.close();
        let worker_count = self.workers.len();
        for handle in self.workers {
            handle.join().expect("worker thread panicked");
        }
        let jobs = Arc::try_unwrap(self.results)
            .expect("all workers joined")
            .into_inner()
            .expect("results lock poisoned");
        let total_seconds = self.started.elapsed().as_secs_f64().max(1e-9);
        let snapshots: usize = jobs.iter().map(|j| j.snapshots).sum();
        BatchReport {
            jobs_per_sec: jobs.len() as f64 / total_seconds,
            snapshots_per_sec: snapshots as f64 / total_seconds,
            max_in_flight: self.queue.max_in_flight(),
            workers: worker_count,
            jobs,
            total_seconds,
        }
    }
}

fn worker_loop(queue: &JobQueue, results: &Mutex<Vec<JobResult>>) {
    // Thread-local instance cache: artifact bytes -> deserialized model.
    let mut cache: HashMap<String, (ModelHandle, Vrdag)> = HashMap::new();
    while let Some(job) = queue.pop() {
        let result = run_job(job, &mut cache);
        results.lock().expect("results lock poisoned").push(result);
        queue.finish_one();
    }
}

fn run_job(job: Job, cache: &mut HashMap<String, (ModelHandle, Vrdag)>) -> JobResult {
    let Job { id, handle, t_len, seed, mut sink } = job;
    let model_name = handle.name().to_string();
    let started = Instant::now();
    let outcome = (|| -> Result<(StreamStats, Option<DynamicGraph>), ServeError> {
        // Reuse the cached instance unless the artifact was re-registered.
        let needs_load = match cache.get(&model_name) {
            Some((cached_handle, _)) => !cached_handle.same_artifact(&handle),
            None => true,
        };
        if needs_load {
            let model = handle.instantiate()?;
            cache.insert(model_name.clone(), (handle.clone(), model));
        }
        let model = &cache.get(&model_name).expect("just inserted").1;
        generate_into_sink(model, t_len, seed, &mut sink)
    })();
    if outcome.is_err() {
        // Never leave a truncated file (header promises t_len snapshots)
        // next to complete ones in the output directory.
        if let GenSink::TsvFile(path) | GenSink::BinaryFile(path) = &sink {
            let _ = std::fs::remove_file(path);
        }
    }
    let seconds = started.elapsed().as_secs_f64().max(1e-9);
    match outcome {
        Ok((stats, graph)) => JobResult {
            id,
            model: model_name,
            t_len,
            seed,
            snapshots: stats.snapshots,
            edges: stats.edges,
            seconds,
            snapshots_per_sec: stats.snapshots as f64 / seconds,
            graph,
            error: None,
        },
        Err(e) => JobResult {
            id,
            model: model_name,
            t_len,
            seed,
            snapshots: 0,
            edges: 0,
            seconds,
            snapshots_per_sec: 0.0,
            graph: None,
            error: Some(e.to_string()),
        },
    }
}

/// Drive Algorithm 1 one snapshot at a time straight into the sink —
/// the full sequence is only ever materialized for [`GenSink::InMemory`].
fn generate_into_sink(
    model: &Vrdag,
    t_len: usize,
    seed: u64,
    sink: &mut GenSink,
) -> Result<(StreamStats, Option<DynamicGraph>), ServeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = model.begin_generation(&mut rng)?;
    let n = model.n_nodes().expect("begin_generation succeeded");
    let f = model.n_attrs().expect("begin_generation succeeded");
    let mut stats = StreamStats::default();

    enum SinkState<'a> {
        Tsv(TsvStreamWriter<BufWriter<std::fs::File>>),
        Bin(BinaryStreamWriter<BufWriter<std::fs::File>>),
        Callback(&'a mut (dyn FnMut(usize, &Snapshot) + Send)),
        Collect(Vec<Snapshot>),
        Discard,
    }

    let mut sink_state = match sink {
        GenSink::TsvFile(path) => {
            let w = BufWriter::new(std::fs::File::create(path)?);
            SinkState::Tsv(TsvStreamWriter::new(w, n, f, t_len)?)
        }
        GenSink::BinaryFile(path) => {
            let w = BufWriter::new(std::fs::File::create(path)?);
            SinkState::Bin(BinaryStreamWriter::new(w, n, f, t_len)?)
        }
        GenSink::Callback(cb) => SinkState::Callback(cb.as_mut()),
        GenSink::InMemory => SinkState::Collect(Vec::with_capacity(t_len)),
        GenSink::Discard => SinkState::Discard,
    };

    for t in 0..t_len {
        let snapshot = state.step(model);
        stats.snapshots += 1;
        stats.edges += snapshot.n_edges();
        match &mut sink_state {
            SinkState::Tsv(w) => w.write_snapshot(&snapshot)?,
            SinkState::Bin(w) => w.write_snapshot(&snapshot)?,
            SinkState::Callback(cb) => cb(t, &snapshot),
            SinkState::Collect(v) => v.push(snapshot),
            SinkState::Discard => {}
        }
    }

    let graph = match sink_state {
        SinkState::Tsv(w) => {
            w.finish()?;
            None
        }
        SinkState::Bin(w) => {
            w.finish()?;
            None
        }
        SinkState::Collect(v) => Some(DynamicGraph::new(v)),
        _ => None,
    };
    Ok((stats, graph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vrdag::VrdagConfig;

    fn registry_with_tiny() -> (ModelRegistry, Vrdag) {
        let g = vrdag_datasets::generate(&vrdag_datasets::tiny(), 6);
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 2;
        let mut m = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        m.fit(&g, &mut rng).unwrap();
        let registry = ModelRegistry::new();
        registry.register("tiny", &m).unwrap();
        (registry, m)
    }

    #[test]
    fn scheduler_jobs_match_direct_generation() {
        let (registry, model) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 2);
        for seed in [5u64, 6, 7, 8] {
            scheduler
                .submit(GenRequest {
                    model: "tiny".into(),
                    t_len: 3,
                    seed,
                    sink: GenSink::InMemory,
                })
                .unwrap();
        }
        let report = scheduler.join();
        assert!(report.all_ok(), "{}", report.render());
        assert_eq!(report.jobs.len(), 4);
        for job in &report.jobs {
            let mut rng = StdRng::seed_from_u64(job.seed);
            let expected = model.generate(3, &mut rng).unwrap();
            assert_eq!(job.graph.as_ref().unwrap(), &expected, "seed {}", job.seed);
            assert_eq!(job.snapshots, 3);
        }
    }

    #[test]
    fn unknown_model_fails_at_submit() {
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 1);
        let err = scheduler.submit(GenRequest {
            model: "missing".into(),
            t_len: 1,
            seed: 0,
            sink: GenSink::Discard,
        });
        assert!(matches!(err, Err(ServeError::UnknownModel(_))));
        let report = scheduler.join();
        assert!(report.jobs.is_empty());
    }

    #[test]
    fn two_jobs_run_concurrently() {
        // Deterministic concurrency proof: both jobs block in their
        // callback sink until the *other* job has produced its first
        // snapshot. This only completes if two workers execute
        // simultaneously.
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 2);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        for seed in [1u64, 2] {
            let barrier = Arc::clone(&barrier);
            let mut synced = false;
            scheduler
                .submit(GenRequest {
                    model: "tiny".into(),
                    t_len: 2,
                    seed,
                    sink: GenSink::Callback(Box::new(move |_, _| {
                        if !synced {
                            barrier.wait();
                            synced = true;
                        }
                    })),
                })
                .unwrap();
        }
        let report = scheduler.join();
        assert!(report.all_ok(), "{}", report.render());
        assert!(
            report.max_in_flight >= 2,
            "expected >=2 jobs in flight, saw {}",
            report.max_in_flight
        );
    }

    #[test]
    fn report_renders_throughput() {
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 2);
        for seed in 0..3u64 {
            scheduler
                .submit(GenRequest {
                    model: "tiny".into(),
                    t_len: 2,
                    seed,
                    sink: GenSink::Discard,
                })
                .unwrap();
        }
        let report = scheduler.join();
        assert!(report.all_ok());
        let rendered = report.render();
        assert!(rendered.contains("3 jobs on 2 workers"), "{rendered}");
        assert!(report.jobs_per_sec > 0.0);
        assert!(report.snapshots_per_sec > 0.0);
    }
}

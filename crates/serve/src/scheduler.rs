//! Concurrent execution of batched generation requests: a [`JobQueue`]
//! drained by a fixed pool of `std::thread` workers, with model-affinity
//! batching, admission control, and a shared [`SnapshotCache`].
//!
//! **Model-affinity batching** — queued jobs are grouped by model
//! artifact (content fingerprint). A worker keeps draining its current
//! model's group before switching, so a batch of `k` jobs against one
//! model pays the deserialization cost once per worker *per batch*, and
//! mixed-model traffic does not thrash instances. Group selection is
//! priority-first: a group's effective priority is the highest
//! [`GenRequest::priority`] among its queued jobs (ties broken by
//! arrival), and a worker abandons its affinity when a strictly
//! higher-priority group is waiting.
//!
//! **Admission control** — an optional queue-depth cap makes `submit`
//! fail fast with [`ServeError::QueueFull`] instead of buffering
//! unboundedly.
//!
//! **Snapshot cache** — identical `(model, t_len, seed)` requests are
//! served from a bounded LRU ([`SnapshotCache`]) when enabled; hits are
//! bit-identical to cold generation by the determinism contract.
//!
//! The streaming sinks ([`GenSink::TsvFile`], [`GenSink::BinaryFile`],
//! [`GenSink::Callback`]) always write one snapshot at a time; only
//! [`GenSink::InMemory`] materializes a full sequence, by request. With
//! the cache enabled, a cold generation *additionally* retains its
//! snapshots to populate the cache — but abandons that copy as soon as
//! it outgrows the cache's byte budget, so per-worker transient memory
//! is bounded by `min(sequence size, CacheBudget::max_bytes)` on top of
//! the one-snapshot streaming bound. Concurrent identical requests are
//! coalesced while the cache is enabled: a queued job whose
//! `(model, t_len, seed)` is already generating on another worker waits
//! for that generation and is then served from the cache.

use crate::cache::{CacheKey, CacheStats, SnapshotCache};
use crate::registry::{ModelHandle, ModelRegistry};
use crate::stream::StreamStats;
use crate::{CacheBudget, ServeError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::BufWriter;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use vrdag::Vrdag;
use vrdag_graph::io::{BinaryStreamWriter, TsvStreamWriter};
use vrdag_graph::{DynamicGraph, Snapshot};

/// Per-snapshot streaming consumer (see [`GenSink::Callback`]).
pub type SnapshotCallback = Box<dyn FnMut(usize, &Snapshot) + Send>;

/// Where a job's snapshots go, one at a time.
pub enum GenSink {
    /// Stream to a TSV file (`vrdag_graph::io` temporal format),
    /// flushed per snapshot.
    TsvFile(PathBuf),
    /// Stream to a compact binary file, flushed per snapshot.
    BinaryFile(PathBuf),
    /// Hand each `(timestep, snapshot)` to a consumer as it is produced.
    Callback(SnapshotCallback),
    /// Collect the full sequence into [`JobResult::graph`] (unbounded
    /// memory — intended for small sequences, tests, and cached serving).
    InMemory,
    /// Generate and drop (throughput measurement / cache warming).
    Discard,
}

impl std::fmt::Debug for GenSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenSink::TsvFile(p) => f.debug_tuple("TsvFile").field(p).finish(),
            GenSink::BinaryFile(p) => f.debug_tuple("BinaryFile").field(p).finish(),
            GenSink::Callback(_) => f.write_str("Callback(..)"),
            GenSink::InMemory => f.write_str("InMemory"),
            GenSink::Discard => f.write_str("Discard"),
        }
    }
}

/// A batched, seed-addressed generation request.
#[derive(Debug)]
pub struct GenRequest {
    /// Registered model name (resolved against the registry at submit
    /// time, so unknown names fail fast).
    pub model: String,
    /// Number of snapshots to generate (must be `>= 1`).
    pub t_len: usize,
    /// Determinism address: the same `(model, t_len, seed)` always yields
    /// the same sequence, regardless of which worker runs it and whether
    /// the snapshot cache serves it.
    pub seed: u64,
    /// Scheduling priority. Higher drains first; the scheduler treats it
    /// per model group (a group's priority is the max over its queued
    /// jobs), and jobs within a group stay FIFO.
    pub priority: i32,
    /// Where the snapshots go.
    pub sink: GenSink,
}

impl GenRequest {
    /// A request with default (zero) priority.
    pub fn new(model: impl Into<String>, t_len: usize, seed: u64, sink: GenSink) -> Self {
        GenRequest { model: model.into(), t_len, seed, priority: 0, sink }
    }

    /// Set the scheduling priority (higher drains first).
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }
}

/// Opaque job identifier (submission order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

struct Job {
    id: JobId,
    handle: ModelHandle,
    t_len: usize,
    seed: u64,
    priority: i32,
    sink: GenSink,
}

/// Outcome and throughput of one executed job.
#[derive(Debug)]
pub struct JobResult {
    pub id: JobId,
    pub model: String,
    pub t_len: usize,
    pub seed: u64,
    /// Snapshots produced (`t_len` on success; 0 on failure — a failed
    /// file-sink job also has its partial output file removed).
    pub snapshots: usize,
    /// Total temporal edges produced.
    pub edges: usize,
    /// Wall-clock job duration in seconds (excluding queue wait).
    pub seconds: f64,
    /// Generation rate of this job.
    pub snapshots_per_sec: f64,
    /// True when the snapshot cache served this job without regenerating.
    pub cache_hit: bool,
    /// The generated sequence, for [`GenSink::InMemory`] jobs. Shared
    /// with the snapshot cache when caching is enabled.
    pub graph: Option<Arc<DynamicGraph>>,
    /// Error message if the job failed.
    pub error: Option<String>,
}

impl JobResult {
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// How well model-affinity batching amortized instantiation in a drained
/// batch: a "batch" is a maximal run of consecutive same-model jobs
/// executed by one worker (one model instantiation each, at most).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AffinityStats {
    /// Number of same-model runs across all workers.
    pub batches: usize,
    /// Length of the longest run.
    pub max_batch_len: usize,
    /// Mean jobs per run.
    pub mean_batch_len: f64,
}

/// Aggregate statistics of a drained batch.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, in completion order.
    pub jobs: Vec<JobResult>,
    /// Wall-clock from scheduler creation to drain.
    pub total_seconds: f64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Snapshots per wall-clock second across all workers.
    pub snapshots_per_sec: f64,
    /// Highest number of jobs that were executing simultaneously —
    /// `>= 2` demonstrates actual concurrency.
    pub max_in_flight: usize,
    /// Number of workers the pool ran.
    pub workers: usize,
    /// Snapshot-cache counters at drain time (all zero when disabled).
    pub cache: CacheStats,
    /// Model-affinity batching statistics.
    pub affinity: AffinityStats,
}

impl BatchReport {
    pub fn all_ok(&self) -> bool {
        self.jobs.iter().all(JobResult::is_ok)
    }

    /// Jobs served from the snapshot cache.
    pub fn cache_hits(&self) -> usize {
        self.jobs.iter().filter(|j| j.cache_hit).count()
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch: {} jobs on {} workers in {:.3}s  ({:.2} jobs/s, {:.1} snapshots/s, peak {} in flight)",
            self.jobs.len(),
            self.workers,
            self.total_seconds,
            self.jobs_per_sec,
            self.snapshots_per_sec,
            self.max_in_flight,
        );
        let _ = writeln!(
            out,
            "  cache: {} hits / {} misses ({:.0}% hit rate), {} evictions, {} entries / {} KiB resident",
            self.cache.hits,
            self.cache.misses,
            100.0 * self.cache.hit_rate(),
            self.cache.evictions,
            self.cache.entries,
            self.cache.bytes / 1024,
        );
        let _ = writeln!(
            out,
            "  affinity: {} model batches, max {} jobs/batch, mean {:.1}",
            self.affinity.batches, self.affinity.max_batch_len, self.affinity.mean_batch_len,
        );
        for j in &self.jobs {
            match &j.error {
                None => {
                    let _ = writeln!(
                        out,
                        "  job {:>3}  model={} t={} seed={}  {:.3}s  {:.1} snapshots/s  {} edges{}",
                        j.id.0,
                        j.model,
                        j.t_len,
                        j.seed,
                        j.seconds,
                        j.snapshots_per_sec,
                        j.edges,
                        if j.cache_hit { "  (cache hit)" } else { "" },
                    );
                }
                Some(e) => {
                    let _ = writeln!(
                        out,
                        "  job {:>3}  model={} t={} seed={}  FAILED: {e}",
                        j.id.0, j.model, j.t_len, j.seed
                    );
                }
            }
        }
        out
    }
}

/// One model artifact's queued jobs (FIFO), with the group's effective
/// priority maintained incrementally: `max_priority` is the max over the
/// queued jobs and `max_count` how many carry it, so a pop only rescans
/// the group when the last max-priority job leaves. This keeps queue
/// selection O(#groups) per pop instead of O(#queued jobs).
struct Group {
    jobs: VecDeque<Job>,
    max_priority: i32,
    max_count: usize,
}

impl Group {
    fn new() -> Self {
        Group { jobs: VecDeque::new(), max_priority: i32::MIN, max_count: 0 }
    }

    fn push(&mut self, job: Job) {
        match job.priority.cmp(&self.max_priority) {
            std::cmp::Ordering::Greater => {
                self.max_priority = job.priority;
                self.max_count = 1;
            }
            std::cmp::Ordering::Equal => self.max_count += 1,
            std::cmp::Ordering::Less => {}
        }
        self.jobs.push_back(job);
    }

    fn remove_at(&mut self, idx: usize) -> Job {
        let job = self.jobs.remove(idx).expect("index in range");
        if job.priority == self.max_priority {
            self.max_count -= 1;
            if self.max_count == 0 {
                self.max_priority =
                    self.jobs.iter().map(|j| j.priority).max().unwrap_or(i32::MIN);
                self.max_count =
                    self.jobs.iter().filter(|j| j.priority == self.max_priority).count();
            }
        }
        job
    }
}

/// Coalescing identity of a job — exactly the snapshot-cache key, so
/// "identical request" here means "would be served by the same cache
/// entry".
fn job_cache_key(job: &Job) -> CacheKey {
    CacheKey {
        model_fingerprint: job.handle.fingerprint(),
        model_size: job.handle.size_bytes(),
        t_len: job.t_len,
        seed: job.seed,
    }
}

/// A group's runnable work under coalescing: the first job a worker may
/// take (FIFO among runnable jobs) and the highest priority among the
/// runnable jobs — blocked duplicates must not inflate the group's
/// effective priority, or a low-priority candidate could preempt
/// another model's strictly higher-priority runnable job.
struct Candidate {
    index: usize,
    priority: i32,
    front_id: u64,
}

struct QueueState {
    /// Queued jobs grouped by model artifact fingerprint. Groups are
    /// removed when drained, so every stored group is non-empty.
    groups: HashMap<u64, Group>,
    /// Keys currently generating on some worker (coalescing mode only):
    /// queued duplicates are held back until the key finishes, then pop
    /// as cache hits.
    busy: HashSet<CacheKey>,
    /// Keys observed to finish without becoming cached (oversized for
    /// the byte budget, or failed): their duplicates can never be served
    /// by waiting, so they are exempt from coalescing and run in
    /// parallel exactly as with the cache disabled.
    uncacheable: HashSet<CacheKey>,
    queued: usize,
    closed: bool,
}

impl QueueState {
    /// Is this job free to run now? With coalescing, a duplicate of an
    /// in-flight key is held back — unless the key is already resident
    /// (it will be served by replay, which needs no exclusivity) or
    /// known uncacheable (waiting would buy nothing).
    fn runnable(&self, cache: Option<&SnapshotCache>, job: &Job) -> bool {
        let Some(cache) = cache else { return true };
        let key = job_cache_key(job);
        !self.busy.contains(&key) || self.uncacheable.contains(&key) || cache.contains(&key)
    }

    /// The runnable candidate of `group`, if any.
    fn candidate(&self, cache: Option<&SnapshotCache>, group: &Group) -> Option<Candidate> {
        if self.busy.is_empty() {
            // Fast path: nothing is blocked, the cached group max holds.
            return group.jobs.front().map(|front| Candidate {
                index: 0,
                priority: group.max_priority,
                front_id: front.id.0,
            });
        }
        let mut first: Option<usize> = None;
        let mut priority = i32::MIN;
        for (i, job) in group.jobs.iter().enumerate() {
            if self.runnable(cache, job) {
                first.get_or_insert(i);
                priority = priority.max(job.priority);
            }
        }
        first.map(|index| Candidate { index, priority, front_id: group.jobs[index].id.0 })
    }

    /// Pick the next runnable job. The best group has the highest
    /// priority among *runnable* jobs, ties broken by oldest runnable
    /// job; a worker's `preferred` group wins whenever it matches the
    /// best priority, so affinity never starves a higher-priority model.
    /// Returns `None` when everything queued is coalescing-blocked (the
    /// caller waits for a finish notification).
    fn take_next(&mut self, preferred: Option<u64>, cache: Option<&SnapshotCache>) -> Option<Job> {
        let mut best: Option<(u64, Candidate)> = None;
        for (&fp, g) in &self.groups {
            let Some(cand) = self.candidate(cache, g) else { continue };
            let better = match &best {
                None => true,
                Some((_, b)) => {
                    cand.priority > b.priority
                        || (cand.priority == b.priority && cand.front_id < b.front_id)
                }
            };
            if better {
                best = Some((fp, cand));
            }
        }
        let (best_fp, best_cand) = best?;
        let (chosen, idx) = match preferred {
            Some(fp) if fp != best_fp => match self.groups.get(&fp) {
                Some(g) => match self.candidate(cache, g) {
                    Some(c) if c.priority == best_cand.priority => (fp, c.index),
                    _ => (best_fp, best_cand.index),
                },
                None => (best_fp, best_cand.index),
            },
            _ => (best_fp, best_cand.index),
        };
        let group = self.groups.get_mut(&chosen).expect("chosen group exists");
        let job = group.remove_at(idx);
        if group.jobs.is_empty() {
            self.groups.remove(&chosen);
        }
        self.queued -= 1;
        Some(job)
    }
}

/// The shared work queue drained by the worker pool: per-model-artifact
/// FIFO groups with priority-first, affinity-aware selection. Public so
/// callers can build custom pools; most users go through [`Scheduler`].
pub struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    /// When set, identical queued requests are held back while one of
    /// them generates (they then complete as cache hits). `None`
    /// disables coalescing — without a cache, duplicates are
    /// independent work and run in parallel.
    cache: Option<SnapshotCache>,
    in_flight: AtomicUsize,
    max_in_flight: AtomicUsize,
}

impl JobQueue {
    pub fn new() -> Self {
        Self::with_cache(None)
    }

    /// A queue that coalesces duplicates of in-flight requests against
    /// `cache` (used by cache-enabled schedulers).
    pub fn with_cache(cache: Option<SnapshotCache>) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                groups: HashMap::new(),
                busy: HashSet::new(),
                uncacheable: HashSet::new(),
                queued: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            cache,
            in_flight: AtomicUsize::new(0),
            max_in_flight: AtomicUsize::new(0),
        }
    }

    fn push(&self, job: Job) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        assert!(!state.closed, "submit after close");
        state.groups.entry(job.handle.fingerprint()).or_insert_with(Group::new).push(job);
        state.queued += 1;
        drop(state);
        self.ready.notify_one();
    }

    /// Blocks until a runnable job is available or the queue is closed
    /// and drained. `preferred` is the model-artifact fingerprint the
    /// calling worker already has instantiated (its affinity).
    fn pop(&self, preferred: Option<u64>) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = state.take_next(preferred, self.cache.as_ref()) {
                if self.cache.is_some() {
                    state.busy.insert(job_cache_key(&job));
                }
                let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                self.max_in_flight.fetch_max(now, Ordering::SeqCst);
                return Some(job);
            }
            // Blocked duplicates (queued > 0 with nothing runnable) wait
            // for the in-flight twin's finish notification even after
            // close.
            if state.closed && state.queued == 0 {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock poisoned");
        }
    }

    fn finish_one(&self, key: &CacheKey) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        if let Some(cache) = &self.cache {
            let mut state = self.state.lock().expect("queue lock poisoned");
            state.busy.remove(key);
            if !cache.contains(key) {
                // Finished without becoming resident: duplicates gain
                // nothing by waiting, stop holding them back. Bounded
                // memory: the set is a heuristic, resetting it only
                // re-serializes one generation per key.
                if state.uncacheable.len() >= 4096 {
                    state.uncacheable.clear();
                }
                state.uncacheable.insert(*key);
            }
            drop(state);
            // Wake any worker parked on a duplicate of this key.
            self.ready.notify_all();
        }
    }

    /// No more submissions; wakes idle workers so they can exit.
    fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Close *and* drop every queued job (abort semantics): in-flight
    /// jobs finish, queued ones never start.
    fn close_discard(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        state.groups.clear();
        state.queued = 0;
        drop(state);
        self.ready.notify_all();
    }

    /// Jobs queued and not yet picked up by a worker.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").queued
    }

    /// Highest observed number of simultaneously executing jobs.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight.load(Ordering::SeqCst)
    }
}

impl Default for JobQueue {
    fn default() -> Self {
        Self::new()
    }
}

/// Construction-time knobs of a [`Scheduler`].
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Worker threads (must be `>= 1`).
    pub workers: usize,
    /// Admission control: `submit` fails with [`ServeError::QueueFull`]
    /// once this many jobs are queued (in-flight jobs do not count).
    /// `None` disables the cap.
    pub max_queue_depth: Option<usize>,
    /// Snapshot-cache budget; [`CacheBudget::disabled`] turns caching off.
    pub cache: CacheBudget,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 2,
            max_queue_depth: None,
            cache: CacheBudget::disabled(),
        }
    }
}

/// Fixed worker pool executing [`GenRequest`]s from a [`JobQueue`].
pub struct Scheduler {
    registry: ModelRegistry,
    queue: Arc<JobQueue>,
    results: Arc<Mutex<Vec<JobResult>>>,
    batch_lens: Arc<Mutex<Vec<usize>>>,
    cache: SnapshotCache,
    workers: Vec<std::thread::JoinHandle<()>>,
    next_id: u64,
    started: Instant,
    max_queue_depth: Option<usize>,
    closed: bool,
}

impl Scheduler {
    /// Spawn `workers` threads draining a fresh queue, with caching and
    /// admission control disabled. Fails with [`ServeError::NoWorkers`]
    /// when `workers == 0`.
    pub fn new(registry: ModelRegistry, workers: usize) -> Result<Scheduler, ServeError> {
        Scheduler::with_config(registry, SchedulerConfig { workers, ..Default::default() })
    }

    /// Spawn a pool with explicit [`SchedulerConfig`]. Fails with
    /// [`ServeError::NoWorkers`] when `config.workers == 0` — a pool
    /// without workers would accept jobs that can never run.
    pub fn with_config(
        registry: ModelRegistry,
        config: SchedulerConfig,
    ) -> Result<Scheduler, ServeError> {
        if config.workers == 0 {
            return Err(ServeError::NoWorkers);
        }
        let cache = SnapshotCache::new(config.cache);
        // Coalescing only pays off when finished twins can be served
        // from the cache.
        let queue =
            Arc::new(JobQueue::with_cache(cache.is_enabled().then(|| cache.clone())));
        let results = Arc::new(Mutex::new(Vec::new()));
        let batch_lens = Arc::new(Mutex::new(Vec::new()));
        let handles = (0..config.workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let results = Arc::clone(&results);
                let batch_lens = Arc::clone(&batch_lens);
                let cache = cache.clone();
                std::thread::Builder::new()
                    .name(format!("vrdag-serve-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &results, &batch_lens, &cache))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(Scheduler {
            registry,
            queue,
            results,
            batch_lens,
            cache,
            workers: handles,
            next_id: 0,
            started: Instant::now(),
            max_queue_depth: config.max_queue_depth,
            closed: false,
        })
    }

    /// The registry this scheduler resolves model names against.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The snapshot cache shared by this scheduler's workers.
    pub fn cache(&self) -> &SnapshotCache {
        &self.cache
    }

    /// Jobs queued and not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Enqueue a request. Fails fast with a typed error instead of
    /// accepting work it cannot run:
    ///
    /// * [`ServeError::SchedulerClosed`] after [`join`](Self::join),
    /// * [`ServeError::UnknownModel`] for unregistered names,
    /// * [`ServeError::InvalidRequest`] for `t_len == 0`,
    /// * [`ServeError::QueueFull`] when the admission cap is reached.
    pub fn submit(&mut self, req: GenRequest) -> Result<JobId, ServeError> {
        if self.closed {
            return Err(ServeError::SchedulerClosed);
        }
        if req.t_len == 0 {
            return Err(ServeError::InvalidRequest(
                "t_len must be >= 1 (a dynamic graph needs at least one snapshot)".into(),
            ));
        }
        let handle = self.registry.resolve(&req.model)?;
        if let Some(cap) = self.max_queue_depth {
            let depth = self.queue.depth();
            if depth >= cap {
                return Err(ServeError::QueueFull { depth, cap });
            }
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.queue.push(Job {
            id,
            handle,
            t_len: req.t_len,
            seed: req.seed,
            priority: req.priority,
            sink: req.sink,
        });
        Ok(id)
    }

    /// Close the queue, wait for every submitted job to finish, and
    /// return the batch report. A second call (and any later `submit`)
    /// fails with [`ServeError::SchedulerClosed`].
    pub fn join(&mut self) -> Result<BatchReport, ServeError> {
        if self.closed {
            return Err(ServeError::SchedulerClosed);
        }
        self.closed = true;
        self.queue.close();
        let worker_count = self.workers.len();
        for handle in std::mem::take(&mut self.workers) {
            handle.join().expect("worker thread panicked");
        }
        let jobs = std::mem::take(&mut *self.results.lock().expect("results lock poisoned"));
        let lens = std::mem::take(&mut *self.batch_lens.lock().expect("batch lens poisoned"));
        let total_seconds = self.started.elapsed().as_secs_f64().max(1e-9);
        let snapshots: usize = jobs.iter().map(|j| j.snapshots).sum();
        let affinity = AffinityStats {
            batches: lens.len(),
            max_batch_len: lens.iter().copied().max().unwrap_or(0),
            mean_batch_len: if lens.is_empty() {
                0.0
            } else {
                lens.iter().sum::<usize>() as f64 / lens.len() as f64
            },
        };
        Ok(BatchReport {
            jobs_per_sec: jobs.len() as f64 / total_seconds,
            snapshots_per_sec: snapshots as f64 / total_seconds,
            max_in_flight: self.queue.max_in_flight(),
            workers: worker_count,
            cache: self.cache.stats(),
            affinity,
            jobs,
            total_seconds,
        })
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        // A dropped-without-join scheduler must not leave workers parked
        // on the condvar forever — and a drop is an abort, not a drain:
        // queued jobs are discarded so error paths exit promptly instead
        // of silently finishing minutes of submitted work.
        if !self.closed {
            self.queue.close_discard();
            for handle in std::mem::take(&mut self.workers) {
                let _ = handle.join();
            }
        }
    }
}

/// A worker's single cached model instance: the artifact it belongs to
/// and the deserialized model. Affinity scheduling makes one instance
/// (instead of a per-model map) the right shape — switching models is
/// exactly the batch boundary.
struct WorkerInstance {
    fingerprint: u64,
    model: Vrdag,
}

fn worker_loop(
    queue: &JobQueue,
    results: &Mutex<Vec<JobResult>>,
    batch_lens: &Mutex<Vec<usize>>,
    cache: &SnapshotCache,
) {
    let mut instance: Option<WorkerInstance> = None;
    // Batch accounting follows the *jobs* (consecutive same-model runs),
    // not the instance: a cache-hit job for another model never needs an
    // instance, so the old one is kept until a miss actually demands a
    // different artifact (see run_job).
    let mut last_fp: Option<u64> = None;
    let mut batch_len = 0usize;
    while let Some(job) = queue.pop(instance.as_ref().map(|i| i.fingerprint)) {
        if last_fp != Some(job.handle.fingerprint()) {
            if batch_len > 0 {
                batch_lens.lock().expect("batch lens poisoned").push(batch_len);
            }
            batch_len = 0;
            last_fp = Some(job.handle.fingerprint());
        }
        let key = job_cache_key(&job);
        let result = run_job(job, &mut instance, cache);
        batch_len += 1;
        results.lock().expect("results lock poisoned").push(result);
        queue.finish_one(&key);
    }
    if batch_len > 0 {
        batch_lens.lock().expect("batch lens poisoned").push(batch_len);
    }
}

fn run_job(job: Job, instance: &mut Option<WorkerInstance>, cache: &SnapshotCache) -> JobResult {
    let Job { id, handle, t_len, seed, priority: _, mut sink } = job;
    let model_name = handle.name().to_string();
    let key = CacheKey {
        model_fingerprint: handle.fingerprint(),
        model_size: handle.size_bytes(),
        t_len,
        seed,
    };
    let started = Instant::now();
    let mut cache_hit = false;
    let outcome = (|| -> Result<(StreamStats, Option<Arc<DynamicGraph>>), ServeError> {
        if cache.is_enabled() {
            if let Some(graph) = cache.get(&key) {
                // Hit: replay the cached sequence into the sink (no
                // model instance needed, so the worker's current one is
                // left alone). The determinism contract makes this
                // bit-identical to regenerating
                // (tests/cache_determinism.rs).
                cache_hit = true;
                let stats = replay_into_sink(&graph, &mut sink)?;
                let out = matches!(sink, GenSink::InMemory).then_some(graph);
                return Ok((stats, out));
            }
        }
        // Miss: make sure this worker's instance matches the artifact
        // (invalidated lazily, only when a miss actually needs another
        // model — the worker still holds at most one instance).
        if instance.as_ref().map(|i| i.fingerprint) != Some(handle.fingerprint()) {
            *instance = None;
            let model = handle.instantiate()?;
            *instance = Some(WorkerInstance { fingerprint: handle.fingerprint(), model });
        }
        let model = &instance.as_ref().expect("just ensured").model;
        // One generation pass: the sink streams per snapshot exactly as
        // with caching off, and the sequence is additionally retained
        // for the cache only while it fits the byte budget.
        let budget = cache.is_enabled().then(|| cache.budget().max_bytes);
        let (stats, graph) = generate_into_sink(model, t_len, seed, &mut sink, budget)?;
        let graph = graph.map(Arc::new);
        if cache.is_enabled() {
            if let Some(g) = &graph {
                cache.insert(key, Arc::clone(g));
            }
        }
        let out = if matches!(sink, GenSink::InMemory) { graph } else { None };
        Ok((stats, out))
    })();
    if outcome.is_err() {
        // Never leave a truncated file (header promises t_len snapshots)
        // next to complete ones in the output directory.
        if let GenSink::TsvFile(path) | GenSink::BinaryFile(path) = &sink {
            let _ = std::fs::remove_file(path);
        }
    }
    let seconds = started.elapsed().as_secs_f64().max(1e-9);
    match outcome {
        Ok((stats, graph)) => JobResult {
            id,
            model: model_name,
            t_len,
            seed,
            snapshots: stats.snapshots,
            edges: stats.edges,
            seconds,
            snapshots_per_sec: stats.snapshots as f64 / seconds,
            cache_hit,
            graph,
            error: None,
        },
        Err(e) => JobResult {
            id,
            model: model_name,
            t_len,
            seed,
            snapshots: 0,
            edges: 0,
            seconds,
            snapshots_per_sec: 0.0,
            cache_hit: false,
            graph: None,
            error: Some(e.to_string()),
        },
    }
}

/// The emitting half of a [`GenSink`], shared by cold generation and
/// cache-hit replay so the two paths can never desynchronize (same
/// writer construction, same per-snapshot flushing, same finish). The
/// in-memory collection of [`GenSink::InMemory`] is handled by the
/// callers — for this writer it is a no-op like [`GenSink::Discard`].
enum SinkWriter<'a> {
    Tsv(TsvStreamWriter<BufWriter<std::fs::File>>),
    Bin(BinaryStreamWriter<BufWriter<std::fs::File>>),
    Callback(&'a mut (dyn FnMut(usize, &Snapshot) + Send)),
    Null,
}

impl<'a> SinkWriter<'a> {
    fn open(
        sink: &'a mut GenSink,
        n: usize,
        f: usize,
        t_len: usize,
    ) -> Result<SinkWriter<'a>, ServeError> {
        Ok(match sink {
            GenSink::TsvFile(path) => {
                let w = BufWriter::new(std::fs::File::create(path)?);
                SinkWriter::Tsv(TsvStreamWriter::new(w, n, f, t_len)?)
            }
            GenSink::BinaryFile(path) => {
                let w = BufWriter::new(std::fs::File::create(path)?);
                SinkWriter::Bin(BinaryStreamWriter::new(w, n, f, t_len)?)
            }
            GenSink::Callback(cb) => SinkWriter::Callback(cb.as_mut()),
            GenSink::InMemory | GenSink::Discard => SinkWriter::Null,
        })
    }

    fn write(&mut self, t: usize, snapshot: &Snapshot) -> Result<(), ServeError> {
        match self {
            SinkWriter::Tsv(w) => w.write_snapshot(snapshot)?,
            SinkWriter::Bin(w) => w.write_snapshot(snapshot)?,
            SinkWriter::Callback(cb) => cb(t, snapshot),
            SinkWriter::Null => {}
        }
        Ok(())
    }

    fn finish(self) -> Result<(), ServeError> {
        match self {
            SinkWriter::Tsv(w) => {
                w.finish()?;
            }
            SinkWriter::Bin(w) => {
                w.finish()?;
            }
            SinkWriter::Callback(_) | SinkWriter::Null => {}
        }
        Ok(())
    }
}

/// Feed a cached sequence through a sink, exactly as generation would
/// have (same writers, same per-snapshot flushing).
fn replay_into_sink(
    graph: &DynamicGraph,
    sink: &mut GenSink,
) -> Result<StreamStats, ServeError> {
    let stats = StreamStats {
        snapshots: graph.t_len(),
        edges: graph.temporal_edge_count(),
    };
    let mut writer = SinkWriter::open(sink, graph.n_nodes(), graph.n_attrs(), graph.t_len())?;
    for (t, s) in graph.iter() {
        writer.write(t, s)?;
    }
    writer.finish()?;
    Ok(stats)
}

/// Drive Algorithm 1 one snapshot at a time straight into the sink.
///
/// The full sequence is materialized only when the caller needs it: for
/// [`GenSink::InMemory`] (the job asked for it), or opportunistically
/// for the snapshot cache when `collect_budget` is set — in which case
/// collection is abandoned the moment the accumulated `approx_bytes`
/// exceed the budget, so an uncacheable (oversized) sequence never
/// breaks the streaming sinks' memory bound.
fn generate_into_sink(
    model: &Vrdag,
    t_len: usize,
    seed: u64,
    sink: &mut GenSink,
    collect_budget: Option<usize>,
) -> Result<(StreamStats, Option<DynamicGraph>), ServeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = model.begin_generation(&mut rng)?;
    let n = model.n_nodes().expect("begin_generation succeeded");
    let f = model.n_attrs().expect("begin_generation succeeded");
    let mut stats = StreamStats::default();
    let want_result = matches!(sink, GenSink::InMemory);
    let mut collected =
        (want_result || collect_budget.is_some()).then(|| Vec::with_capacity(t_len));
    let mut collected_bytes = 0usize;
    let mut writer = SinkWriter::open(sink, n, f, t_len)?;
    for t in 0..t_len {
        let snapshot = state.step(model);
        stats.snapshots += 1;
        stats.edges += snapshot.n_edges();
        writer.write(t, &snapshot)?;
        if collected.is_some() {
            collected_bytes += snapshot.approx_bytes();
            let over = collect_budget.is_some_and(|max| collected_bytes > max);
            if over && !want_result {
                collected = None;
            } else if let Some(v) = &mut collected {
                v.push(snapshot);
            }
        }
    }
    writer.finish()?;
    Ok((stats, collected.map(DynamicGraph::new)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vrdag::VrdagConfig;

    fn fitted(fit_seed: u64) -> Vrdag {
        let g = vrdag_datasets::generate(&vrdag_datasets::tiny(), fit_seed);
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 2;
        let mut m = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(fit_seed);
        m.fit(&g, &mut rng).unwrap();
        m
    }

    fn registry_with_tiny() -> (ModelRegistry, Vrdag) {
        let m = fitted(3);
        let registry = ModelRegistry::new();
        registry.register("tiny", &m).unwrap();
        (registry, m)
    }

    #[test]
    fn scheduler_jobs_match_direct_generation() {
        let (registry, model) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 2).unwrap();
        for seed in [5u64, 6, 7, 8] {
            scheduler
                .submit(GenRequest::new("tiny", 3, seed, GenSink::InMemory))
                .unwrap();
        }
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        assert_eq!(report.jobs.len(), 4);
        for job in &report.jobs {
            let mut rng = StdRng::seed_from_u64(job.seed);
            let expected = model.generate(3, &mut rng).unwrap();
            assert_eq!(job.graph.as_deref().unwrap(), &expected, "seed {}", job.seed);
            assert_eq!(job.snapshots, 3);
            assert!(!job.cache_hit, "caching is off by default");
        }
        assert_eq!(report.cache.hits + report.cache.misses, 0);
    }

    #[test]
    fn unknown_model_fails_at_submit() {
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 1).unwrap();
        let err = scheduler.submit(GenRequest::new("missing", 1, 0, GenSink::Discard));
        assert!(matches!(err, Err(ServeError::UnknownModel(_))));
        let report = scheduler.join().unwrap();
        assert!(report.jobs.is_empty());
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        let (registry, _) = registry_with_tiny();
        match Scheduler::new(registry, 0) {
            Err(ServeError::NoWorkers) => {}
            Err(other) => panic!("expected NoWorkers, got {other:?}"),
            Ok(_) => panic!("expected NoWorkers, got a scheduler"),
        }
    }

    #[test]
    fn submit_and_join_after_join_are_typed_errors() {
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 1).unwrap();
        scheduler
            .submit(GenRequest::new("tiny", 1, 0, GenSink::Discard))
            .unwrap();
        let report = scheduler.join().unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert!(matches!(
            scheduler.submit(GenRequest::new("tiny", 1, 1, GenSink::Discard)),
            Err(ServeError::SchedulerClosed)
        ));
        assert!(matches!(scheduler.join(), Err(ServeError::SchedulerClosed)));
    }

    #[test]
    fn zero_t_len_is_rejected_at_submit() {
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 1).unwrap();
        assert!(matches!(
            scheduler.submit(GenRequest::new("tiny", 0, 0, GenSink::Discard)),
            Err(ServeError::InvalidRequest(_))
        ));
        let report = scheduler.join().unwrap();
        assert!(report.jobs.is_empty());
    }

    #[test]
    fn dropping_an_unjoined_scheduler_does_not_hang() {
        let (registry, _) = registry_with_tiny();
        let scheduler = Scheduler::new(registry, 2).unwrap();
        drop(scheduler);
    }

    #[test]
    fn drop_discards_queued_jobs() {
        // Drop is an abort: with the single worker pinned inside a job,
        // everything still queued at drop time must never execute.
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 1).unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        scheduler
            .submit(blocking_request("tiny", 0, started_tx, release_rx))
            .unwrap();
        started_rx.recv().unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        for seed in 1..4u64 {
            let ran = Arc::clone(&ran);
            scheduler
                .submit(GenRequest::new(
                    "tiny",
                    1,
                    seed,
                    GenSink::Callback(Box::new(move |_, _| {
                        ran.fetch_add(1, Ordering::SeqCst);
                    })),
                ))
                .unwrap();
        }
        assert_eq!(scheduler.queue_depth(), 3);
        let queue = Arc::clone(&scheduler.queue);
        // Drop on a helper thread (it blocks joining the pinned worker);
        // once the queue is visibly discarded, release the blocker.
        let dropper = std::thread::spawn(move || drop(scheduler));
        while queue.depth() > 0 {
            std::thread::yield_now();
        }
        release_tx.send(()).unwrap();
        dropper.join().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 0, "queued jobs ran after drop");
    }

    #[test]
    fn two_jobs_run_concurrently() {
        // Deterministic concurrency proof: both jobs block in their
        // callback sink until the *other* job has produced its first
        // snapshot. This only completes if two workers execute
        // simultaneously.
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 2).unwrap();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        for seed in [1u64, 2] {
            let barrier = Arc::clone(&barrier);
            let mut synced = false;
            scheduler
                .submit(GenRequest::new(
                    "tiny",
                    2,
                    seed,
                    GenSink::Callback(Box::new(move |_, _| {
                        if !synced {
                            barrier.wait();
                            synced = true;
                        }
                    })),
                ))
                .unwrap();
        }
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        assert!(
            report.max_in_flight >= 2,
            "expected >=2 jobs in flight, saw {}",
            report.max_in_flight
        );
    }

    #[test]
    fn report_renders_throughput_cache_and_affinity() {
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::with_config(
            registry,
            SchedulerConfig { workers: 2, cache: CacheBudget::entries(8), ..Default::default() },
        )
        .unwrap();
        for seed in 0..3u64 {
            scheduler
                .submit(GenRequest::new("tiny", 2, seed, GenSink::Discard))
                .unwrap();
        }
        let report = scheduler.join().unwrap();
        assert!(report.all_ok());
        let rendered = report.render();
        assert!(rendered.contains("3 jobs on 2 workers"), "{rendered}");
        assert!(rendered.contains("cache:"), "{rendered}");
        assert!(rendered.contains("affinity:"), "{rendered}");
        assert!(report.jobs_per_sec > 0.0);
        assert!(report.snapshots_per_sec > 0.0);
        assert!(report.affinity.batches >= 1);
        assert_eq!(report.cache.misses, 3, "distinct seeds all miss");
    }

    #[test]
    fn repeated_requests_hit_the_cache_and_match() {
        let (registry, model) = registry_with_tiny();
        let mut scheduler = Scheduler::with_config(
            registry,
            SchedulerConfig {
                workers: 1, // deterministic hit accounting
                cache: CacheBudget::entries(8),
                ..Default::default()
            },
        )
        .unwrap();
        for _round in 0..3 {
            for seed in [10u64, 11] {
                scheduler
                    .submit(GenRequest::new("tiny", 3, seed, GenSink::InMemory))
                    .unwrap();
            }
        }
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        assert_eq!(report.cache.misses, 2, "first round misses");
        assert_eq!(report.cache.hits, 4, "later rounds hit");
        assert_eq!(report.cache_hits(), 4);
        for job in &report.jobs {
            let mut rng = StdRng::seed_from_u64(job.seed);
            let expected = model.generate(3, &mut rng).unwrap();
            assert_eq!(job.graph.as_deref().unwrap(), &expected, "seed {}", job.seed);
            assert_eq!(job.snapshots, 3);
            assert_eq!(job.edges, expected.temporal_edge_count());
        }
    }

    #[test]
    fn concurrent_identical_requests_coalesce_into_one_generation() {
        // Two workers, two identical requests: without coalescing both
        // could miss and regenerate; with it, exactly one generates and
        // the twin is served from the cache — deterministically.
        let (registry, model) = registry_with_tiny();
        let mut scheduler = Scheduler::with_config(
            registry,
            SchedulerConfig { workers: 2, cache: CacheBudget::entries(4), ..Default::default() },
        )
        .unwrap();
        scheduler.submit(GenRequest::new("tiny", 3, 33, GenSink::InMemory)).unwrap();
        scheduler.submit(GenRequest::new("tiny", 3, 33, GenSink::InMemory)).unwrap();
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        assert_eq!(report.cache.misses, 1, "{}", report.render());
        assert_eq!(report.cache.hits, 1, "{}", report.render());
        let mut rng = StdRng::seed_from_u64(33);
        let expected = model.generate(3, &mut rng).unwrap();
        for job in &report.jobs {
            assert_eq!(job.graph.as_deref().unwrap(), &expected);
        }
    }

    #[test]
    fn blocked_duplicate_does_not_inflate_group_priority() {
        // Regression: a coalescing-blocked high-priority duplicate must
        // not lend its priority to the group — cross-group selection
        // compares *runnable* priorities only.
        let a = fitted(3);
        let b = fitted(4);
        let registry = ModelRegistry::new();
        registry.register("a", &a).unwrap();
        registry.register("b", &b).unwrap();
        let mut scheduler = Scheduler::with_config(
            registry,
            SchedulerConfig { workers: 2, cache: CacheBudget::entries(8), ..Default::default() },
        )
        .unwrap();
        // Pin both workers: worker 1 on model a (key K = a/1/0), worker
        // 2 on model b (key M = b/1/9).
        let (k_started_tx, k_started_rx) = std::sync::mpsc::channel();
        let (k_release_tx, k_release_rx) = std::sync::mpsc::channel();
        scheduler.submit(blocking_request("a", 0, k_started_tx, k_release_rx)).unwrap();
        let (m_started_tx, m_started_rx) = std::sync::mpsc::channel();
        let (m_release_tx, m_release_rx) = std::sync::mpsc::channel();
        scheduler.submit(blocking_request("b", 9, m_started_tx, m_release_rx)).unwrap();
        k_started_rx.recv().unwrap();
        m_started_rx.recv().unwrap();
        // Queue: a duplicate of K at priority 10 (blocked while K is in
        // flight), a priority-0 model-a job, a priority-5 model-b job.
        let dup =
            scheduler.submit(GenRequest::new("a", 1, 0, GenSink::Discard).with_priority(10)).unwrap();
        let low = scheduler.submit(GenRequest::new("a", 1, 1, GenSink::Discard)).unwrap();
        let high =
            scheduler.submit(GenRequest::new("b", 1, 2, GenSink::Discard).with_priority(5)).unwrap();
        // Release only worker 2: it must run the runnable priority-5
        // model-b job before the priority-0 model-a job, even though the
        // blocked duplicate makes model a's raw group max 10.
        m_release_tx.send(()).unwrap();
        loop {
            // Wait (bounded by the test harness timeout) until worker 2
            // has drained both runnable jobs; the duplicate stays queued.
            if scheduler.queue_depth() == 1 {
                break;
            }
            std::thread::yield_now();
        }
        k_release_tx.send(()).unwrap();
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        let pos = |id: JobId| report.jobs.iter().position(|j| j.id == id).unwrap();
        // Worker 2 drains both runnable jobs sequentially: the runnable
        // priority-5 job must beat the priority-0 one despite the
        // blocked priority-10 duplicate in the latter's group.
        assert!(pos(high) < pos(low), "priority 5 must run before priority 0\n{}", report.render());
        // The duplicate stayed blocked until its twin K completed, then
        // was served from K's cache entry.
        assert!(pos(JobId(0)) < pos(dup), "duplicate ran before its twin\n{}", report.render());
        assert!(report.jobs[pos(dup)].cache_hit, "{}", report.render());
    }

    #[test]
    fn oversized_sequences_are_not_retained_for_the_cache() {
        // A byte budget below one sequence: generation must still
        // succeed and stream, but nothing is admitted and repeated
        // requests keep regenerating.
        let (registry, model) = registry_with_tiny();
        let mut scheduler = Scheduler::with_config(
            registry,
            SchedulerConfig {
                workers: 1,
                cache: CacheBudget { max_entries: 8, max_bytes: 64 },
                ..Default::default()
            },
        )
        .unwrap();
        scheduler.submit(GenRequest::new("tiny", 3, 13, GenSink::InMemory)).unwrap();
        scheduler.submit(GenRequest::new("tiny", 3, 13, GenSink::Discard)).unwrap();
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        assert_eq!(report.cache.misses, 2, "oversized entries never admitted");
        assert_eq!(report.cache.entries, 0);
        // The InMemory job still got its (oversized) sequence — the
        // budget bounds the cache, not an explicit request.
        let mut rng = StdRng::seed_from_u64(13);
        let expected = model.generate(3, &mut rng).unwrap();
        let with_graph = report.jobs.iter().find(|j| j.graph.is_some()).unwrap();
        assert_eq!(with_graph.graph.as_deref().unwrap(), &expected);
    }

    #[test]
    fn cache_hits_replay_into_file_sinks() {
        let dir = std::env::temp_dir().join("vrdag_sched_cache_replay");
        std::fs::create_dir_all(&dir).unwrap();
        let (registry, model) = registry_with_tiny();
        let mut scheduler = Scheduler::with_config(
            registry,
            SchedulerConfig { workers: 1, cache: CacheBudget::entries(4), ..Default::default() },
        )
        .unwrap();
        // Warm the cache, then serve the same sequence to a file.
        scheduler
            .submit(GenRequest::new("tiny", 3, 21, GenSink::Discard))
            .unwrap();
        let path = dir.join("replayed.tsv");
        scheduler
            .submit(GenRequest::new("tiny", 3, 21, GenSink::TsvFile(path.clone())))
            .unwrap();
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        assert_eq!(report.cache.hits, 1);
        let on_disk = vrdag_graph::io::load_tsv(&path).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        assert_eq!(on_disk, model.generate(3, &mut rng).unwrap());
    }

    /// Deterministic blocker: a callback job that signals when it starts
    /// and then parks until released, pinning one worker.
    fn blocking_request(
        model: &str,
        seed: u64,
        started_tx: std::sync::mpsc::Sender<()>,
        release_rx: std::sync::mpsc::Receiver<()>,
    ) -> GenRequest {
        let mut fired = false;
        GenRequest::new(
            model,
            1,
            seed,
            GenSink::Callback(Box::new(move |_, _| {
                if !fired {
                    fired = true;
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                }
            })),
        )
    }

    #[test]
    fn queue_depth_cap_rejects_with_typed_error() {
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::with_config(
            registry,
            SchedulerConfig { workers: 1, max_queue_depth: Some(2), ..Default::default() },
        )
        .unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        scheduler
            .submit(blocking_request("tiny", 0, started_tx, release_rx))
            .unwrap();
        // Wait until the blocker is in flight, so the queue is empty.
        started_rx.recv().unwrap();
        assert_eq!(scheduler.queue_depth(), 0);
        scheduler.submit(GenRequest::new("tiny", 1, 1, GenSink::Discard)).unwrap();
        scheduler.submit(GenRequest::new("tiny", 1, 2, GenSink::Discard)).unwrap();
        match scheduler.submit(GenRequest::new("tiny", 1, 3, GenSink::Discard)) {
            Err(ServeError::QueueFull { depth: 2, cap: 2 }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        release_tx.send(()).unwrap();
        let report = scheduler.join().unwrap();
        // The rejected job never ran; the report stays consistent.
        assert!(report.all_ok(), "{}", report.render());
        assert_eq!(report.jobs.len(), 3);
        let mut seeds: Vec<u64> = report.jobs.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        assert_eq!(seeds, vec![0, 1, 2]);
    }

    #[test]
    fn affinity_groups_same_model_jobs_and_priority_preempts() {
        // Two genuinely different artifacts. One worker; a blocker on
        // model A holds it while we queue interleaved traffic.
        let a = fitted(3);
        let b = fitted(4);
        let registry = ModelRegistry::new();
        registry.register("a", &a).unwrap();
        registry.register("b", &b).unwrap();
        let mut scheduler = Scheduler::with_config(
            registry,
            SchedulerConfig { workers: 1, ..Default::default() },
        )
        .unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        scheduler
            .submit(blocking_request("a", 0, started_tx, release_rx))
            .unwrap();
        started_rx.recv().unwrap();
        // Equal-priority interleaved jobs: affinity should drain all of
        // model a before touching model b.
        let a1 = scheduler.submit(GenRequest::new("a", 1, 1, GenSink::Discard)).unwrap();
        let b1 = scheduler.submit(GenRequest::new("b", 1, 2, GenSink::Discard)).unwrap();
        let a2 = scheduler.submit(GenRequest::new("a", 1, 3, GenSink::Discard)).unwrap();
        let b2 = scheduler.submit(GenRequest::new("b", 1, 4, GenSink::Discard)).unwrap();
        release_tx.send(()).unwrap();
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        let order: Vec<JobId> = report.jobs.iter().map(|j| j.id).collect();
        // Completion order: blocker, then a's batch, then b's batch.
        assert_eq!(order[1..], [a1, a2, b1, b2], "{}", report.render());
        assert_eq!(report.affinity.batches, 2, "{:?}", report.affinity);
        assert_eq!(report.affinity.max_batch_len, 3);

        // Second scheduler: a higher-priority model b job beats affinity.
        let registry = ModelRegistry::new();
        registry.register("a", &a).unwrap();
        registry.register("b", &b).unwrap();
        let mut scheduler = Scheduler::with_config(
            registry,
            SchedulerConfig { workers: 1, ..Default::default() },
        )
        .unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        scheduler
            .submit(blocking_request("a", 0, started_tx, release_rx))
            .unwrap();
        started_rx.recv().unwrap();
        let low = scheduler.submit(GenRequest::new("a", 1, 1, GenSink::Discard)).unwrap();
        let high = scheduler
            .submit(GenRequest::new("b", 1, 2, GenSink::Discard).with_priority(5))
            .unwrap();
        release_tx.send(()).unwrap();
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        let order: Vec<JobId> = report.jobs.iter().map(|j| j.id).collect();
        assert_eq!(order[1..], [high, low], "priority must beat affinity");
    }
}

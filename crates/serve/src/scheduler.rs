//! Batch facade over the service core: a [`Scheduler`] owns a private
//! [`ServeHandle`], collects the [`Ticket`]s of everything submitted,
//! and [`join`](Scheduler::join) turns them into one end-of-batch
//! [`BatchReport`] — the submit-everything-then-drain workflow the CLI's
//! `batch-generate` and the offline experiments want, without the
//! frontend's long-lived lifecycle.
//!
//! All scheduling behavior (model-affinity batching, priorities,
//! admission control, snapshot cache, coalescing) lives in the core; the
//! facade adds only ticket bookkeeping and report assembly. For
//! always-on serving use [`ServeHandle`] directly, or put the TCP
//! [`Frontend`](crate::Frontend) in front of it.

use crate::core::{AffinityStats, GenRequest, JobId, JobResult, ServeConfig, ServeHandle, Ticket};
use crate::registry::ModelRegistry;
use crate::{CacheStats, ServeError, SnapshotCache};
use std::time::Instant;

/// Aggregate statistics of a drained batch.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, in completion order.
    pub jobs: Vec<JobResult>,
    /// Wall-clock from scheduler creation to drain.
    pub total_seconds: f64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Snapshots per wall-clock second across all workers.
    pub snapshots_per_sec: f64,
    /// Highest number of jobs that were executing simultaneously —
    /// `>= 2` demonstrates actual concurrency.
    pub max_in_flight: usize,
    /// Number of workers the pool ran.
    pub workers: usize,
    /// Snapshot-cache counters at drain time (all zero when disabled).
    pub cache: CacheStats,
    /// Model-affinity batching statistics.
    pub affinity: AffinityStats,
    /// Per-job wall-time percentiles over the batch.
    pub latency: crate::LatencyStats,
}

impl BatchReport {
    pub fn all_ok(&self) -> bool {
        self.jobs.iter().all(JobResult::is_ok)
    }

    /// Jobs served from the snapshot cache.
    pub fn cache_hits(&self) -> usize {
        self.jobs.iter().filter(|j| j.cache_hit).count()
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch: {} jobs on {} workers in {:.3}s  ({:.2} jobs/s, {:.1} snapshots/s, peak {} in flight)",
            self.jobs.len(),
            self.workers,
            self.total_seconds,
            self.jobs_per_sec,
            self.snapshots_per_sec,
            self.max_in_flight,
        );
        let _ = writeln!(out, "  latency: {}", self.latency.render());
        let _ = writeln!(
            out,
            "  cache: {} hits / {} misses ({:.0}% hit rate), {} evictions, {} entries / {} KiB resident",
            self.cache.hits,
            self.cache.misses,
            100.0 * self.cache.hit_rate(),
            self.cache.evictions,
            self.cache.entries,
            self.cache.bytes / 1024,
        );
        let _ = writeln!(
            out,
            "  affinity: {} model batches, max {} jobs/batch, mean {:.1}",
            self.affinity.batches, self.affinity.max_batch_len, self.affinity.mean_batch_len,
        );
        for j in &self.jobs {
            match &j.error {
                None => {
                    let _ = writeln!(
                        out,
                        "  job {:>3}  model={} t={} seed={}  {:.3}s  {:.1} snapshots/s  {} edges{}",
                        j.id.0,
                        j.model,
                        j.t_len,
                        j.seed,
                        j.seconds,
                        j.snapshots_per_sec,
                        j.edges,
                        if j.cache_hit { "  (cache hit)" } else { "" },
                    );
                }
                Some(e) => {
                    let _ = writeln!(
                        out,
                        "  job {:>3}  model={} t={} seed={}  FAILED: {e}",
                        j.id.0, j.model, j.t_len, j.seed
                    );
                }
            }
        }
        out
    }
}

/// Batch wrapper over a private service core: submit a batch of
/// [`GenRequest`]s, then [`join`](Self::join) once for a drained
/// [`BatchReport`].
pub struct Scheduler {
    handle: ServeHandle,
    tickets: Vec<Ticket>,
    started: Instant,
    closed: bool,
}

impl Scheduler {
    /// Spawn `workers` threads draining a fresh queue, with caching and
    /// admission control disabled. Fails with [`ServeError::NoWorkers`]
    /// when `workers == 0`.
    pub fn new(registry: ModelRegistry, workers: usize) -> Result<Scheduler, ServeError> {
        Scheduler::with_config(registry, ServeConfig { workers, ..Default::default() })
    }

    /// Spawn a pool with explicit [`ServeConfig`].
    pub fn with_config(
        registry: ModelRegistry,
        config: ServeConfig,
    ) -> Result<Scheduler, ServeError> {
        Ok(Scheduler {
            handle: ServeHandle::with_config(registry, config)?,
            tickets: Vec::new(),
            started: Instant::now(),
            closed: false,
        })
    }

    /// The underlying service handle. Cloning it gives a non-blocking
    /// door to the same core (shared queue, cache, stats) — useful to
    /// watch `stats()` while a batch drains.
    pub fn handle(&self) -> &ServeHandle {
        &self.handle
    }

    /// The registry this scheduler resolves model names against.
    pub fn registry(&self) -> &ModelRegistry {
        self.handle.registry()
    }

    /// The snapshot cache shared by this scheduler's workers.
    pub fn cache(&self) -> &SnapshotCache {
        self.handle.cache()
    }

    /// Jobs queued and not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.handle.queue_depth()
    }

    /// Enqueue a request (non-blocking; the ticket is kept internally
    /// for [`join`](Self::join)). Same typed failure modes as
    /// [`ServeHandle::submit`], plus [`ServeError::SchedulerClosed`]
    /// after `join`.
    pub fn submit(&mut self, req: GenRequest) -> Result<JobId, ServeError> {
        if self.closed {
            return Err(ServeError::SchedulerClosed);
        }
        let ticket = self.handle.submit(req)?;
        let id = ticket.id();
        self.tickets.push(ticket);
        Ok(id)
    }

    /// Close the queue, wait for every submitted job to finish, and
    /// return the batch report. A second call (and any later `submit`)
    /// fails with [`ServeError::SchedulerClosed`].
    pub fn join(&mut self) -> Result<BatchReport, ServeError> {
        if self.closed {
            return Err(ServeError::SchedulerClosed);
        }
        self.closed = true;
        self.handle.close();
        let mut jobs = Vec::with_capacity(self.tickets.len());
        for ticket in self.tickets.drain(..) {
            jobs.push(ticket.wait()?);
        }
        // Workers have nothing left after the tickets resolve; joining
        // them folds each worker's final open affinity run into the
        // stats before the snapshot below.
        self.handle.join_workers();
        // Each result arrived on its own channel; the completion
        // sequence number restores global completion order.
        jobs.sort_by_key(|j| j.seq);
        let stats = self.handle.stats();
        let total_seconds = self.started.elapsed().as_secs_f64().max(1e-9);
        let snapshots: usize = jobs.iter().map(|j| j.snapshots).sum();
        Ok(BatchReport {
            jobs_per_sec: jobs.len() as f64 / total_seconds,
            snapshots_per_sec: snapshots as f64 / total_seconds,
            max_in_flight: stats.max_in_flight,
            workers: stats.workers,
            cache: stats.cache,
            affinity: stats.affinity,
            latency: stats.latency,
            jobs,
            total_seconds,
        })
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        // A dropped-without-join scheduler is an abort, not a drain:
        // queued jobs are discarded (counted as dropped in the core
        // stats) so error paths exit promptly instead of silently
        // finishing minutes of submitted work. The core joins its
        // workers when its last handle goes away.
        if !self.closed {
            self.handle.abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::GenSink;
    use crate::{CacheBudget, ServeConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use vrdag::{Vrdag, VrdagConfig};

    fn fitted(fit_seed: u64) -> Vrdag {
        let g = vrdag_datasets::generate(&vrdag_datasets::tiny(), fit_seed);
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 2;
        let mut m = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(fit_seed);
        m.fit(&g, &mut rng).unwrap();
        m
    }

    fn registry_with_tiny() -> (ModelRegistry, Vrdag) {
        let m = fitted(3);
        let registry = ModelRegistry::new();
        registry.register("tiny", &m).unwrap();
        (registry, m)
    }

    #[test]
    fn scheduler_jobs_match_direct_generation() {
        let (registry, model) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 2).unwrap();
        for seed in [5u64, 6, 7, 8] {
            scheduler.submit(GenRequest::new("tiny", 3, seed, GenSink::InMemory)).unwrap();
        }
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        assert_eq!(report.jobs.len(), 4);
        for job in &report.jobs {
            let mut rng = StdRng::seed_from_u64(job.seed);
            let expected = model.generate(3, &mut rng).unwrap();
            assert_eq!(job.graph.as_deref().unwrap(), &expected, "seed {}", job.seed);
            assert_eq!(job.snapshots, 3);
            assert!(!job.cache_hit, "caching is off by default");
        }
        assert_eq!(report.cache.hits + report.cache.misses, 0);
    }

    #[test]
    fn unknown_model_fails_at_submit() {
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 1).unwrap();
        let err = scheduler.submit(GenRequest::new("missing", 1, 0, GenSink::Discard));
        assert!(matches!(err, Err(ServeError::UnknownModel(_))));
        let report = scheduler.join().unwrap();
        assert!(report.jobs.is_empty());
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        let (registry, _) = registry_with_tiny();
        match Scheduler::new(registry, 0) {
            Err(ServeError::NoWorkers) => {}
            Err(other) => panic!("expected NoWorkers, got {other:?}"),
            Ok(_) => panic!("expected NoWorkers, got a scheduler"),
        }
    }

    #[test]
    fn submit_and_join_after_join_are_typed_errors() {
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 1).unwrap();
        scheduler.submit(GenRequest::new("tiny", 1, 0, GenSink::Discard)).unwrap();
        let report = scheduler.join().unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert!(matches!(
            scheduler.submit(GenRequest::new("tiny", 1, 1, GenSink::Discard)),
            Err(ServeError::SchedulerClosed)
        ));
        assert!(matches!(scheduler.join(), Err(ServeError::SchedulerClosed)));
    }

    #[test]
    fn zero_t_len_is_rejected_at_submit() {
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 1).unwrap();
        assert!(matches!(
            scheduler.submit(GenRequest::new("tiny", 0, 0, GenSink::Discard)),
            Err(ServeError::InvalidRequest(_))
        ));
        let report = scheduler.join().unwrap();
        assert!(report.jobs.is_empty());
    }

    #[test]
    fn dropping_an_unjoined_scheduler_does_not_hang() {
        let (registry, _) = registry_with_tiny();
        let scheduler = Scheduler::new(registry, 2).unwrap();
        drop(scheduler);
    }

    #[test]
    fn drop_discards_queued_jobs_and_counts_them() {
        // Drop is an abort: with the single worker pinned inside a job,
        // everything still queued at drop time must never execute — and
        // must stay observable as `dropped_jobs` on the core stats.
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 1).unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        scheduler.submit(blocking_request("tiny", 0, started_tx, release_rx)).unwrap();
        started_rx.recv().unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        for seed in 1..4u64 {
            let ran = Arc::clone(&ran);
            scheduler
                .submit(GenRequest::new(
                    "tiny",
                    1,
                    seed,
                    GenSink::Callback(Box::new(move |_, _| {
                        ran.fetch_add(1, Ordering::SeqCst);
                    })),
                ))
                .unwrap();
        }
        assert_eq!(scheduler.queue_depth(), 3);
        // A handle clone keeps the core's stats observable across the
        // facade's death.
        let handle = scheduler.handle().clone();
        // Drop on a helper thread; once the queue is visibly discarded,
        // release the blocker.
        let dropper = std::thread::spawn(move || drop(scheduler));
        while handle.queue_depth() > 0 {
            std::thread::yield_now();
        }
        release_tx.send(()).unwrap();
        dropper.join().unwrap();
        handle.join_workers();
        assert_eq!(ran.load(Ordering::SeqCst), 0, "queued jobs ran after drop");
        let stats = handle.stats();
        assert_eq!(stats.dropped_jobs, 3, "discarded jobs are counted");
        assert_eq!(stats.completed, 1, "only the in-flight blocker finished");
    }

    #[test]
    fn two_jobs_run_concurrently() {
        // Deterministic concurrency proof: both jobs block in their
        // callback sink until the *other* job has produced its first
        // snapshot. This only completes if two workers execute
        // simultaneously.
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::new(registry, 2).unwrap();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        for seed in [1u64, 2] {
            let barrier = Arc::clone(&barrier);
            let mut synced = false;
            scheduler
                .submit(GenRequest::new(
                    "tiny",
                    2,
                    seed,
                    GenSink::Callback(Box::new(move |_, _| {
                        if !synced {
                            barrier.wait();
                            synced = true;
                        }
                    })),
                ))
                .unwrap();
        }
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        assert!(
            report.max_in_flight >= 2,
            "expected >=2 jobs in flight, saw {}",
            report.max_in_flight
        );
    }

    #[test]
    fn report_renders_throughput_cache_affinity_and_latency() {
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::with_config(
            registry,
            ServeConfig { workers: 2, cache: CacheBudget::entries(8), ..Default::default() },
        )
        .unwrap();
        for seed in 0..3u64 {
            scheduler.submit(GenRequest::new("tiny", 2, seed, GenSink::Discard)).unwrap();
        }
        let report = scheduler.join().unwrap();
        assert!(report.all_ok());
        let rendered = report.render();
        assert!(rendered.contains("3 jobs on 2 workers"), "{rendered}");
        assert!(rendered.contains("cache:"), "{rendered}");
        assert!(rendered.contains("affinity:"), "{rendered}");
        assert!(rendered.contains("latency: p50"), "{rendered}");
        assert!(report.jobs_per_sec > 0.0);
        assert!(report.snapshots_per_sec > 0.0);
        assert!(report.affinity.batches >= 1);
        assert!(report.latency.p99_seconds >= report.latency.p50_seconds);
        assert_eq!(report.cache.misses, 3, "distinct seeds all miss");
    }

    #[test]
    fn repeated_requests_hit_the_cache_and_match() {
        let (registry, model) = registry_with_tiny();
        let mut scheduler = Scheduler::with_config(
            registry,
            ServeConfig {
                workers: 1, // deterministic hit accounting
                cache: CacheBudget::entries(8),
                ..Default::default()
            },
        )
        .unwrap();
        for _round in 0..3 {
            for seed in [10u64, 11] {
                scheduler.submit(GenRequest::new("tiny", 3, seed, GenSink::InMemory)).unwrap();
            }
        }
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        assert_eq!(report.cache.misses, 2, "first round misses");
        assert_eq!(report.cache.hits, 4, "later rounds hit");
        assert_eq!(report.cache_hits(), 4);
        for job in &report.jobs {
            let mut rng = StdRng::seed_from_u64(job.seed);
            let expected = model.generate(3, &mut rng).unwrap();
            assert_eq!(job.graph.as_deref().unwrap(), &expected, "seed {}", job.seed);
            assert_eq!(job.snapshots, 3);
            assert_eq!(job.edges, expected.temporal_edge_count());
        }
    }

    #[test]
    fn concurrent_identical_requests_coalesce_into_one_generation() {
        // Two workers, two identical requests: without coalescing both
        // could miss and regenerate; with it, exactly one generates and
        // the twin is served from the cache — deterministically.
        let (registry, model) = registry_with_tiny();
        let mut scheduler = Scheduler::with_config(
            registry,
            ServeConfig { workers: 2, cache: CacheBudget::entries(4), ..Default::default() },
        )
        .unwrap();
        scheduler.submit(GenRequest::new("tiny", 3, 33, GenSink::InMemory)).unwrap();
        scheduler.submit(GenRequest::new("tiny", 3, 33, GenSink::InMemory)).unwrap();
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        assert_eq!(report.cache.misses, 1, "{}", report.render());
        assert_eq!(report.cache.hits, 1, "{}", report.render());
        let mut rng = StdRng::seed_from_u64(33);
        let expected = model.generate(3, &mut rng).unwrap();
        for job in &report.jobs {
            assert_eq!(job.graph.as_deref().unwrap(), &expected);
        }
    }

    #[test]
    fn blocked_duplicate_does_not_inflate_group_priority() {
        // Regression: a coalescing-blocked high-priority duplicate must
        // not lend its priority to the group — cross-group selection
        // compares *runnable* priorities only.
        let a = fitted(3);
        let b = fitted(4);
        let registry = ModelRegistry::new();
        registry.register("a", &a).unwrap();
        registry.register("b", &b).unwrap();
        let mut scheduler = Scheduler::with_config(
            registry,
            ServeConfig { workers: 2, cache: CacheBudget::entries(8), ..Default::default() },
        )
        .unwrap();
        // Pin both workers: worker 1 on model a (key K = a/1/0), worker
        // 2 on model b (key M = b/1/9).
        let (k_started_tx, k_started_rx) = std::sync::mpsc::channel();
        let (k_release_tx, k_release_rx) = std::sync::mpsc::channel();
        scheduler.submit(blocking_request("a", 0, k_started_tx, k_release_rx)).unwrap();
        let (m_started_tx, m_started_rx) = std::sync::mpsc::channel();
        let (m_release_tx, m_release_rx) = std::sync::mpsc::channel();
        scheduler.submit(blocking_request("b", 9, m_started_tx, m_release_rx)).unwrap();
        k_started_rx.recv().unwrap();
        m_started_rx.recv().unwrap();
        // Queue: a duplicate of K at priority 10 (blocked while K is in
        // flight), a priority-0 model-a job, a priority-5 model-b job.
        let dup = scheduler
            .submit(GenRequest::new("a", 1, 0, GenSink::Discard).with_priority(10))
            .unwrap();
        let low = scheduler.submit(GenRequest::new("a", 1, 1, GenSink::Discard)).unwrap();
        let high = scheduler
            .submit(GenRequest::new("b", 1, 2, GenSink::Discard).with_priority(5))
            .unwrap();
        // Release only worker 2: it must run the runnable priority-5
        // model-b job before the priority-0 model-a job, even though the
        // blocked duplicate makes model a's raw group max 10.
        m_release_tx.send(()).unwrap();
        loop {
            // Wait (bounded by the test harness timeout) until worker 2
            // has drained both runnable jobs; the duplicate stays queued.
            if scheduler.queue_depth() == 1 {
                break;
            }
            std::thread::yield_now();
        }
        k_release_tx.send(()).unwrap();
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        let pos = |id: JobId| report.jobs.iter().position(|j| j.id == id).unwrap();
        // Worker 2 drains both runnable jobs sequentially: the runnable
        // priority-5 job must beat the priority-0 one despite the
        // blocked priority-10 duplicate in the latter's group.
        assert!(pos(high) < pos(low), "priority 5 must run before priority 0\n{}", report.render());
        // The duplicate stayed blocked until its twin K completed, then
        // was served from K's cache entry.
        assert!(pos(JobId(0)) < pos(dup), "duplicate ran before its twin\n{}", report.render());
        assert!(report.jobs[pos(dup)].cache_hit, "{}", report.render());
    }

    #[test]
    fn oversized_sequences_are_not_retained_for_the_cache() {
        // A byte budget below one sequence: generation must still
        // succeed and stream, but nothing is admitted and repeated
        // requests keep regenerating.
        let (registry, model) = registry_with_tiny();
        let mut scheduler = Scheduler::with_config(
            registry,
            ServeConfig {
                workers: 1,
                cache: CacheBudget { max_entries: 8, max_bytes: 64 },
                ..Default::default()
            },
        )
        .unwrap();
        scheduler.submit(GenRequest::new("tiny", 3, 13, GenSink::InMemory)).unwrap();
        scheduler.submit(GenRequest::new("tiny", 3, 13, GenSink::Discard)).unwrap();
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        assert_eq!(report.cache.misses, 2, "oversized entries never admitted");
        assert_eq!(report.cache.entries, 0);
        // The InMemory job still got its (oversized) sequence — the
        // budget bounds the cache, not an explicit request.
        let mut rng = StdRng::seed_from_u64(13);
        let expected = model.generate(3, &mut rng).unwrap();
        let with_graph = report.jobs.iter().find(|j| j.graph.is_some()).unwrap();
        assert_eq!(with_graph.graph.as_deref().unwrap(), &expected);
    }

    #[test]
    fn cache_hits_replay_into_file_sinks() {
        let dir = std::env::temp_dir().join("vrdag_sched_cache_replay");
        std::fs::create_dir_all(&dir).unwrap();
        let (registry, model) = registry_with_tiny();
        let mut scheduler = Scheduler::with_config(
            registry,
            ServeConfig { workers: 1, cache: CacheBudget::entries(4), ..Default::default() },
        )
        .unwrap();
        // Warm the cache, then serve the same sequence to a file.
        scheduler.submit(GenRequest::new("tiny", 3, 21, GenSink::Discard)).unwrap();
        let path = dir.join("replayed.tsv");
        scheduler.submit(GenRequest::new("tiny", 3, 21, GenSink::TsvFile(path.clone()))).unwrap();
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        assert_eq!(report.cache.hits, 1);
        let on_disk = vrdag_graph::io::load_tsv(&path).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        assert_eq!(on_disk, model.generate(3, &mut rng).unwrap());
    }

    /// Deterministic blocker: a callback job that signals when it starts
    /// and then parks until released, pinning one worker.
    fn blocking_request(
        model: &str,
        seed: u64,
        started_tx: std::sync::mpsc::Sender<()>,
        release_rx: std::sync::mpsc::Receiver<()>,
    ) -> GenRequest {
        let mut fired = false;
        GenRequest::new(
            model,
            1,
            seed,
            GenSink::Callback(Box::new(move |_, _| {
                if !fired {
                    fired = true;
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                }
            })),
        )
    }

    #[test]
    fn queue_depth_cap_rejects_with_typed_error() {
        let (registry, _) = registry_with_tiny();
        let mut scheduler = Scheduler::with_config(
            registry,
            ServeConfig { workers: 1, max_queue_depth: Some(2), ..Default::default() },
        )
        .unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        scheduler.submit(blocking_request("tiny", 0, started_tx, release_rx)).unwrap();
        // Wait until the blocker is in flight, so the queue is empty.
        started_rx.recv().unwrap();
        assert_eq!(scheduler.queue_depth(), 0);
        scheduler.submit(GenRequest::new("tiny", 1, 1, GenSink::Discard)).unwrap();
        scheduler.submit(GenRequest::new("tiny", 1, 2, GenSink::Discard)).unwrap();
        match scheduler.submit(GenRequest::new("tiny", 1, 3, GenSink::Discard)) {
            Err(ServeError::QueueFull { depth: 2, cap: 2 }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        release_tx.send(()).unwrap();
        let report = scheduler.join().unwrap();
        // The rejected job never ran; the report stays consistent.
        assert!(report.all_ok(), "{}", report.render());
        assert_eq!(report.jobs.len(), 3);
        let mut seeds: Vec<u64> = report.jobs.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        assert_eq!(seeds, vec![0, 1, 2]);
    }

    #[test]
    fn affinity_groups_same_model_jobs_and_priority_preempts() {
        // Two genuinely different artifacts. One worker; a blocker on
        // model A holds it while we queue interleaved traffic.
        let a = fitted(3);
        let b = fitted(4);
        let registry = ModelRegistry::new();
        registry.register("a", &a).unwrap();
        registry.register("b", &b).unwrap();
        let mut scheduler =
            Scheduler::with_config(registry, ServeConfig { workers: 1, ..Default::default() })
                .unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        scheduler.submit(blocking_request("a", 0, started_tx, release_rx)).unwrap();
        started_rx.recv().unwrap();
        // Equal-priority interleaved jobs: affinity should drain all of
        // model a before touching model b.
        let a1 = scheduler.submit(GenRequest::new("a", 1, 1, GenSink::Discard)).unwrap();
        let b1 = scheduler.submit(GenRequest::new("b", 1, 2, GenSink::Discard)).unwrap();
        let a2 = scheduler.submit(GenRequest::new("a", 1, 3, GenSink::Discard)).unwrap();
        let b2 = scheduler.submit(GenRequest::new("b", 1, 4, GenSink::Discard)).unwrap();
        release_tx.send(()).unwrap();
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        let order: Vec<JobId> = report.jobs.iter().map(|j| j.id).collect();
        // Completion order: blocker, then a's batch, then b's batch.
        assert_eq!(order[1..], [a1, a2, b1, b2], "{}", report.render());
        assert_eq!(report.affinity.batches, 2, "{:?}", report.affinity);
        assert_eq!(report.affinity.max_batch_len, 3);

        // Second scheduler: a higher-priority model b job beats affinity.
        let registry = ModelRegistry::new();
        registry.register("a", &a).unwrap();
        registry.register("b", &b).unwrap();
        let mut scheduler =
            Scheduler::with_config(registry, ServeConfig { workers: 1, ..Default::default() })
                .unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        scheduler.submit(blocking_request("a", 0, started_tx, release_rx)).unwrap();
        started_rx.recv().unwrap();
        let low = scheduler.submit(GenRequest::new("a", 1, 1, GenSink::Discard)).unwrap();
        let high = scheduler
            .submit(GenRequest::new("b", 1, 2, GenSink::Discard).with_priority(5))
            .unwrap();
        release_tx.send(()).unwrap();
        let report = scheduler.join().unwrap();
        assert!(report.all_ok(), "{}", report.render());
        let order: Vec<JobId> = report.jobs.iter().map(|j| j.id).collect();
        assert_eq!(order[1..], [high, low], "priority must beat affinity");
    }
}

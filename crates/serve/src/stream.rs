//! Pull-based streaming generation: one snapshot per `next()`, memory
//! bounded by a single snapshot.

use crate::ServeError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use vrdag::{GenerationState, Vrdag};
use vrdag_graph::io::{BinaryStreamWriter, TsvStreamWriter};
use vrdag_graph::Snapshot;

/// What a finished (fully drained) stream produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Snapshots emitted.
    pub snapshots: usize,
    /// Total temporal edges across the emitted snapshots.
    pub edges: usize,
    /// Approximate in-memory bytes of the emitted snapshots
    /// (`Snapshot::approx_bytes` summed) — the unit of the serving
    /// layer's per-tenant `bytes_streamed` accounting.
    pub bytes: usize,
}

/// A seed-addressed, resumable snapshot stream over an owned model
/// instance (Algorithm 1 run one timestep per [`Iterator::next`] call).
///
/// Identical seeds yield identical sequences; the stream never holds more
/// than the snapshot it is currently yielding. Use the `spill_*` methods
/// to pipe the remainder through the streaming writers of
/// `vrdag_graph::io` without materializing a `DynamicGraph`.
pub struct SnapshotStream {
    model: Vrdag,
    state: GenerationState,
    t_len: usize,
}

impl SnapshotStream {
    /// Start a stream of `t_len` snapshots from `model`, deterministically
    /// addressed by `seed` (equivalent to
    /// `model.generate(t_len, &mut StdRng::seed_from_u64(seed))`, one
    /// snapshot at a time).
    pub fn new(model: Vrdag, t_len: usize, seed: u64) -> Result<SnapshotStream, ServeError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let state = model.begin_generation(&mut rng)?;
        Ok(SnapshotStream { model, state, t_len })
    }

    /// Snapshots still to be produced.
    pub fn remaining(&self) -> usize {
        self.t_len - self.state.t()
    }

    /// The model instance driving this stream.
    pub fn model(&self) -> &Vrdag {
        &self.model
    }

    /// Shape of the fitted model: `(n_nodes, n_attrs)`.
    fn shape(&self) -> (usize, usize) {
        (
            self.model.n_nodes().expect("streaming model is fitted"),
            self.model.n_attrs().expect("streaming model is fitted"),
        )
    }

    /// Drain the remaining snapshots through `write`, accumulating stats.
    fn drain(
        mut self,
        mut write: impl FnMut(&Snapshot) -> Result<(), ServeError>,
    ) -> Result<StreamStats, ServeError> {
        let mut stats = StreamStats::default();
        for snapshot in &mut self {
            stats.snapshots += 1;
            stats.edges += snapshot.n_edges();
            stats.bytes += snapshot.approx_bytes();
            write(&snapshot)?;
        }
        Ok(stats)
    }

    /// Drain the remaining snapshots into a streaming TSV writer,
    /// flushing per snapshot.
    pub fn spill_tsv(self, w: impl Write) -> Result<StreamStats, ServeError> {
        let (n, f) = self.shape();
        let mut sw = TsvStreamWriter::new(w, n, f, self.remaining())?;
        let stats = self.drain(|s| sw.write_snapshot(s).map_err(ServeError::from))?;
        sw.finish()?;
        Ok(stats)
    }

    /// Drain the remaining snapshots into the compact binary format,
    /// flushing per snapshot.
    pub fn spill_binary(self, w: impl Write) -> Result<StreamStats, ServeError> {
        let (n, f) = self.shape();
        let mut sw = BinaryStreamWriter::new(w, n, f, self.remaining())?;
        let stats = self.drain(|s| sw.write_snapshot(s).map_err(ServeError::from))?;
        sw.finish()?;
        Ok(stats)
    }
}

impl Iterator for SnapshotStream {
    type Item = Snapshot;

    fn next(&mut self) -> Option<Snapshot> {
        if self.state.t() >= self.t_len {
            return None;
        }
        Some(self.state.step(&self.model))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining();
        (r, Some(r))
    }
}

impl ExactSizeIterator for SnapshotStream {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vrdag::VrdagConfig;
    use vrdag_graph::DynamicGraph;

    fn fitted() -> Vrdag {
        let g = vrdag_datasets::generate(&vrdag_datasets::tiny(), 4);
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 2;
        let mut m = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(2);
        m.fit(&g, &mut rng).unwrap();
        m
    }

    #[test]
    fn stream_equals_one_shot_generate() {
        let model = fitted();
        let mut rng = StdRng::seed_from_u64(123);
        let one_shot = model.generate(5, &mut rng).unwrap();

        let stream = SnapshotStream::new(fitted_clone(&model), 5, 123).unwrap();
        assert_eq!(stream.len(), 5);
        let streamed: Vec<_> = stream.collect();
        assert_eq!(one_shot, DynamicGraph::new(streamed));
    }

    /// Clone a fitted model through its serialized form (Vrdag is not
    /// `Clone`; serving always works on artifact round-trips anyway).
    fn fitted_clone(m: &Vrdag) -> Vrdag {
        Vrdag::from_bytes(&m.to_bytes().unwrap()).unwrap()
    }

    #[test]
    fn spill_tsv_round_trips() {
        let model = fitted();
        let stream = SnapshotStream::new(fitted_clone(&model), 3, 7).unwrap();
        let mut buf = Vec::new();
        let stats = stream.spill_tsv(&mut buf).unwrap();
        assert_eq!(stats.snapshots, 3);

        let mut rng = StdRng::seed_from_u64(7);
        let expected = model.generate(3, &mut rng).unwrap();
        let loaded = {
            let dir = std::env::temp_dir().join("vrdag_serve_stream");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("spill.tsv");
            std::fs::write(&path, &buf).unwrap();
            vrdag_graph::io::load_tsv(&path).unwrap()
        };
        assert_eq!(expected, loaded);
        assert_eq!(stats.edges, expected.temporal_edge_count());
    }

    #[test]
    fn spill_binary_round_trips() {
        let model = fitted();
        let stream = SnapshotStream::new(fitted_clone(&model), 4, 11).unwrap();
        let mut buf = Vec::new();
        let stats = stream.spill_binary(&mut buf).unwrap();
        assert_eq!(stats.snapshots, 4);

        let mut rng = StdRng::seed_from_u64(11);
        let expected = model.generate(4, &mut rng).unwrap();
        let decoded = vrdag_graph::io::decode_binary(bytes::Bytes::from(buf)).unwrap();
        assert_eq!(expected, decoded);
    }

    #[test]
    fn partial_drain_then_spill_covers_the_tail() {
        let model = fitted();
        let mut stream = SnapshotStream::new(fitted_clone(&model), 5, 42).unwrap();
        let head: Vec<_> = (&mut stream).take(2).collect();
        assert_eq!(stream.remaining(), 3);
        let mut buf = Vec::new();
        let stats = stream.spill_tsv(&mut buf).unwrap();
        assert_eq!(stats.snapshots, 3);
        assert_eq!(head.len(), 2);
    }
}

//! Multi-tenant identity, quotas, and authentication for the serving
//! stack.
//!
//! A [`Tenant`] is the unit of isolation the whole service schedules
//! around: every job carries a [`TenantId`], admission control is
//! enforced per tenant ([`Tenant::max_inflight`],
//! [`Tenant::max_queue_share`], a token-bucket [`RateLimit`]), queue
//! selection is weighted-fair across tenants by [`Tenant::weight`]
//! (deficit-round-robin in the job queue), and snapshot-cache insertions
//! are charged against the inserting tenant's
//! [`Tenant::cache_byte_share`] so one tenant cannot evict the whole
//! working set.
//!
//! The [`TenantRegistry`] maps pre-shared tokens to tenants. Token
//! lookup compares every candidate with a constant-time byte comparison
//! — an attacker probing the wire cannot learn a prefix of a valid
//! token from timing. Registries are built from a builder API or loaded
//! from a simple colon-separated config file (see
//! [`TenantRegistry::from_reader`]); a registry with no tokens is
//! "auth off": every request maps to the built-in `anonymous` tenant
//! and the service behaves exactly as before tenants existed.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Interned tenant identity carried by jobs, queue lanes, cache entries,
/// and per-tenant statistics. Cheap to clone (one `Arc`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(Arc<str>);

/// The id every unauthenticated (auth-off) request maps to.
pub const ANONYMOUS_TENANT: &str = "anonymous";

impl TenantId {
    /// Construct an id. Valid ids are 1–64 chars of `[A-Za-z0-9._:~-]`
    /// (the wire-tag alphabet, so ids can be echoed in reply headers).
    pub fn new(id: impl AsRef<str>) -> Option<TenantId> {
        let id = id.as_ref();
        valid_tenant_id(id).then(|| TenantId(Arc::from(id)))
    }

    /// The built-in anonymous tenant's id.
    pub fn anonymous() -> TenantId {
        TenantId(Arc::from(ANONYMOUS_TENANT))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    pub fn is_anonymous(&self) -> bool {
        &*self.0 == ANONYMOUS_TENANT
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TenantId({:?})", &*self.0)
    }
}

/// Is `s` a well-formed tenant id? Same alphabet as wire tags.
pub fn valid_tenant_id(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | ':' | '~' | '-'))
}

/// Token-bucket rate limit: a tenant may submit bursts of up to
/// `burst` jobs, refilled continuously at `per_sec` jobs per second.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateLimit {
    /// Sustained submissions per second.
    pub per_sec: f64,
    /// Bucket capacity (maximum burst).
    pub burst: f64,
}

/// One tenant's identity and quota configuration. Immutable once
/// registered; mutable runtime state (the rate-limit bucket) lives in
/// the [`TenantRegistry`].
#[derive(Clone, Debug)]
pub struct Tenant {
    id: TenantId,
    /// Weighted-fair share of worker time relative to other tenants
    /// (deficit-round-robin weight, `>= 1`). A weight-3 tenant drains
    /// roughly three snapshots for every one a weight-1 tenant drains
    /// under contention.
    pub weight: u32,
    /// Maximum outstanding jobs (queued + executing) this tenant may
    /// hold at once; `None` = unlimited.
    pub max_inflight: Option<usize>,
    /// Fraction of the service's global `max_queue_depth` this tenant
    /// may occupy (clamped to at least one slot); ignored when the
    /// service has no global queue cap. `None` = unlimited.
    pub max_queue_share: Option<f64>,
    /// Token-bucket submission rate limit; `None` = unlimited.
    pub rate_limit: Option<RateLimit>,
    /// Fraction of the snapshot cache's byte budget this tenant's
    /// insertions may occupy; when exceeded, the tenant's *own*
    /// least-recently-used entries are evicted first. `None` = only the
    /// global budget applies.
    pub cache_byte_share: Option<f64>,
}

impl Tenant {
    /// A tenant with weight 1 and no quotas.
    pub fn new(id: TenantId) -> Tenant {
        Tenant {
            id,
            weight: 1,
            max_inflight: None,
            max_queue_share: None,
            rate_limit: None,
            cache_byte_share: None,
        }
    }

    pub fn id(&self) -> &TenantId {
        &self.id
    }

    pub fn with_weight(mut self, weight: u32) -> Tenant {
        self.weight = weight.max(1);
        self
    }

    pub fn with_max_inflight(mut self, max: usize) -> Tenant {
        self.max_inflight = Some(max);
        self
    }

    pub fn with_max_queue_share(mut self, share: f64) -> Tenant {
        self.max_queue_share = Some(share.clamp(0.0, 1.0));
        self
    }

    pub fn with_rate_limit(mut self, per_sec: f64, burst: f64) -> Tenant {
        self.rate_limit = Some(RateLimit { per_sec: per_sec.max(0.0), burst: burst.max(1.0) });
        self
    }

    pub fn with_cache_byte_share(mut self, share: f64) -> Tenant {
        self.cache_byte_share = Some(share.clamp(0.0, 1.0));
        self
    }
}

/// Why a tenant config file failed to parse.
#[derive(Debug)]
pub struct TenantConfigError {
    /// 1-based line number in the input.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for TenantConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenants config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TenantConfigError {}

/// Runtime state of one tenant's token bucket.
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

struct RegistryInner {
    /// Pre-shared tokens, checked with a constant-time comparison.
    tokens: Vec<(Vec<u8>, Arc<Tenant>)>,
    by_id: HashMap<TenantId, Arc<Tenant>>,
    anonymous: Arc<Tenant>,
    buckets: Mutex<HashMap<TenantId, Bucket>>,
}

/// Thread-safe, clonable registry of tenants and their pre-shared
/// tokens. Clones share state (rate-limit buckets included).
///
/// An empty registry (no tokens) means **auth off**: the frontend skips
/// the `AUTH` greeting and every request runs as the built-in
/// `anonymous` tenant, which has no quotas — byte-identical behavior to
/// the pre-tenant service.
#[derive(Clone)]
pub struct TenantRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for TenantRegistry {
    fn default() -> Self {
        TenantRegistryBuilder::default().build()
    }
}

impl TenantRegistry {
    /// An auth-off registry holding only the anonymous tenant.
    pub fn anonymous_only() -> TenantRegistry {
        TenantRegistry::default()
    }

    pub fn builder() -> TenantRegistryBuilder {
        TenantRegistryBuilder::default()
    }

    /// Parse a tenants config from a string. One tenant per line:
    ///
    /// ```text
    /// # id:token:weight[:max_inflight[:max_queue_share[:rate_per_sec[:burst[:cache_share]]]]]
    /// gold:gold-secret-token:3:64:0.75:100:200:0.75
    /// bronze:bronze-secret-token:1:8:0.25:10:20:0.25
    /// ```
    ///
    /// Blank lines and `#` comments are skipped; a trailing field may be
    /// `-` (or omitted) for "unlimited". Because `:` is the field
    /// delimiter, config-file tokens must not contain it (a line with
    /// too many fields is rejected with a hint rather than silently
    /// registering a truncated secret); tokens containing `:` are still
    /// registrable through the builder API.
    pub fn from_reader(text: &str) -> Result<TenantRegistry, TenantConfigError> {
        let mut builder = TenantRegistry::builder();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(':').collect();
            if fields.len() < 3 {
                return Err(TenantConfigError {
                    line: line_no,
                    message: format!(
                        "expected at least id:token:weight, got {} field(s)",
                        fields.len()
                    ),
                });
            }
            if fields.len() > 8 {
                return Err(TenantConfigError {
                    line: line_no,
                    message: format!(
                        "too many fields ({}); `:` is the delimiter, so config-file tokens must \
                         not contain it (tokens with `:` need the builder API)",
                        fields.len()
                    ),
                });
            }
            let err = |message: String| TenantConfigError { line: line_no, message };
            let id = TenantId::new(fields[0]).ok_or_else(|| {
                err(format!("invalid tenant id {:?} (1-64 chars of [A-Za-z0-9._:~-])", fields[0]))
            })?;
            if id.is_anonymous() {
                return Err(
                    err("the anonymous tenant is built in and cannot carry a token".into()),
                );
            }
            let token = fields[1];
            if token.is_empty() {
                return Err(err(format!("tenant {id} has an empty token")));
            }
            let opt = |i: usize| fields.get(i).copied().filter(|f| !f.is_empty() && *f != "-");
            let parse_num = |i: usize, what: &str| -> Result<Option<f64>, TenantConfigError> {
                match opt(i) {
                    None => Ok(None),
                    Some(raw) => raw.parse::<f64>().map(Some).map_err(|_| TenantConfigError {
                        line: line_no,
                        message: format!("invalid {what} {raw:?}"),
                    }),
                }
            };
            // Every quota is validated at parse time: a truncating
            // `as`-cast would turn a typo'd `-5` or `0.9` max_inflight
            // into a silent cap of 0 that locks the tenant out with no
            // error anywhere near the cause.
            let integer = |raw: Option<f64>, what: &str, min: f64| -> Result<Option<u64>, _> {
                match raw {
                    None => Ok(None),
                    Some(v) if v.fract() == 0.0 && v >= min && v <= 1e9 => Ok(Some(v as u64)),
                    Some(v) => {
                        Err(err(format!("{what} {v} must be an integer in {min}..=1000000000")))
                    }
                }
            };
            let weight = integer(parse_num(2, "weight")?, "weight", 1.0)?.unwrap_or(1);
            let mut tenant = Tenant::new(id).with_weight(weight.min(1_000_000) as u32);
            if let Some(max) = integer(parse_num(3, "max_inflight")?, "max_inflight", 1.0)? {
                tenant = tenant.with_max_inflight(max as usize);
            }
            let share = |raw: Option<f64>, what: &str| -> Result<Option<f64>, _> {
                match raw {
                    None => Ok(None),
                    Some(v) if v > 0.0 && v <= 1.0 => Ok(Some(v)),
                    Some(v) => Err(err(format!("{what} {v} must be a fraction in (0.0, 1.0]"))),
                }
            };
            if let Some(v) = share(parse_num(4, "max_queue_share")?, "max_queue_share")? {
                tenant = tenant.with_max_queue_share(v);
            }
            if let Some(per_sec) = parse_num(5, "rate_per_sec")? {
                if !per_sec.is_finite() || per_sec < 0.0 {
                    return Err(err(format!("rate_per_sec {per_sec} must be >= 0")));
                }
                let burst = parse_num(6, "burst")?.unwrap_or(per_sec.max(1.0));
                if !burst.is_finite() || burst < 1.0 {
                    return Err(err(format!("burst {burst} must be >= 1")));
                }
                tenant = tenant.with_rate_limit(per_sec, burst);
            }
            if let Some(v) = share(parse_num(7, "cache_share")?, "cache_share")? {
                tenant = tenant.with_cache_byte_share(v);
            }
            builder = builder
                .tenant(tenant, token)
                .map_err(|message| TenantConfigError { line: line_no, message })?;
        }
        Ok(builder.build())
    }

    /// Load a tenants config file (see [`from_reader`](Self::from_reader)
    /// for the format).
    pub fn from_file(path: impl AsRef<Path>) -> Result<TenantRegistry, Box<dyn std::error::Error>> {
        let text = std::fs::read_to_string(path)?;
        Ok(TenantRegistry::from_reader(&text)?)
    }

    /// True when at least one token is registered — the frontend then
    /// demands an `AUTH` greeting before any other command.
    pub fn auth_enabled(&self) -> bool {
        !self.inner.tokens.is_empty()
    }

    /// Tenants with a token (the anonymous tenant is not counted).
    pub fn len(&self) -> usize {
        self.inner.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.tokens.is_empty()
    }

    /// The built-in anonymous tenant.
    pub fn anonymous(&self) -> Arc<Tenant> {
        Arc::clone(&self.inner.anonymous)
    }

    /// Resolve a tenant by id (the anonymous tenant resolves too).
    pub fn get(&self, id: &TenantId) -> Option<Arc<Tenant>> {
        if id.is_anonymous() {
            return Some(self.anonymous());
        }
        self.inner.by_id.get(id).cloned()
    }

    /// Registered tenant ids, sorted (anonymous excluded).
    pub fn ids(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self.inner.by_id.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Authenticate a pre-shared token. Every registered token is
    /// compared with a constant-time byte comparison so the scan's
    /// timing does not depend on how much of any token matched.
    pub fn authenticate(&self, token: &str) -> Option<Arc<Tenant>> {
        let probe = token.as_bytes();
        let mut found: Option<&Arc<Tenant>> = None;
        for (stored, tenant) in &self.inner.tokens {
            if constant_time_eq(stored, probe) {
                found = Some(tenant);
            }
        }
        found.cloned()
    }

    /// Try to take one job from the tenant's rate-limit bucket. `true`
    /// when admitted (or the tenant has no rate limit).
    pub fn try_acquire_rate(&self, tenant: &Tenant) -> bool {
        let Some(limit) = tenant.rate_limit else { return true };
        let mut buckets = self.inner.buckets.lock().expect("bucket lock poisoned");
        let now = Instant::now();
        let bucket = buckets
            .entry(tenant.id.clone())
            .or_insert_with(|| Bucket { tokens: limit.burst, last_refill: now });
        let elapsed = now.duration_since(bucket.last_refill).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * limit.per_sec).min(limit.burst);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Return a rate token taken by
    /// [`try_acquire_rate`](Self::try_acquire_rate) whose job was
    /// then rejected by a later admission check — the failed submit must
    /// not burn rate budget.
    pub fn refund_rate(&self, tenant: &Tenant) {
        let Some(limit) = tenant.rate_limit else { return };
        let mut buckets = self.inner.buckets.lock().expect("bucket lock poisoned");
        if let Some(bucket) = buckets.get_mut(&tenant.id) {
            bucket.tokens = (bucket.tokens + 1.0).min(limit.burst);
        }
    }
}

impl fmt::Debug for TenantRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantRegistry")
            .field("auth_enabled", &self.auth_enabled())
            .field("tenants", &self.ids())
            .finish()
    }
}

/// Builder for a [`TenantRegistry`].
#[derive(Default)]
pub struct TenantRegistryBuilder {
    tokens: Vec<(Vec<u8>, Arc<Tenant>)>,
    by_id: HashMap<TenantId, Arc<Tenant>>,
}

impl TenantRegistryBuilder {
    /// Register `tenant` under the pre-shared `token`. Fails on a
    /// duplicate tenant id, a duplicate token, or a token the wire
    /// grammar cannot carry ([`protocol::valid_token`]: 1–128 printable
    /// non-space ASCII chars) — an unspeakable token would register
    /// fine and then lock the tenant out with a misleading
    /// `auth-required` at every connection attempt.
    ///
    /// [`protocol::valid_token`]: crate::protocol::valid_token
    pub fn tenant(mut self, tenant: Tenant, token: impl AsRef<str>) -> Result<Self, String> {
        if !crate::protocol::valid_token(token.as_ref()) {
            return Err(format!(
                "tenant {:?}: token must be 1-128 printable non-space ASCII chars (the wire \
                 grammar of AUTH token=...)",
                tenant.id.as_str()
            ));
        }
        let token = token.as_ref().as_bytes().to_vec();
        if self.by_id.contains_key(&tenant.id) {
            return Err(format!("duplicate tenant id {:?}", tenant.id.as_str()));
        }
        if self.tokens.iter().any(|(t, _)| t == &token) {
            return Err(format!("duplicate token for tenant {:?}", tenant.id.as_str()));
        }
        let tenant = Arc::new(tenant);
        self.by_id.insert(tenant.id.clone(), Arc::clone(&tenant));
        self.tokens.push((token, tenant));
        Ok(self)
    }

    pub fn build(self) -> TenantRegistry {
        TenantRegistry {
            inner: Arc::new(RegistryInner {
                tokens: self.tokens,
                by_id: self.by_id,
                anonymous: Arc::new(Tenant::new(TenantId::anonymous())),
                buckets: Mutex::new(HashMap::new()),
            }),
        }
    }
}

/// Constant-time byte-slice equality: the comparison visits every byte
/// of `probe` regardless of where (or whether) a mismatch occurs, so
/// the running time leaks only the *length* of the attacker-supplied
/// probe (which the attacker already knows), never which prefix of a
/// stored token it matched. Lengths are compared as full `usize`s — a
/// truncating cast here would let tokens whose lengths differ by a
/// multiple of 256 alias each other.
fn constant_time_eq(stored: &[u8], probe: &[u8]) -> bool {
    let mut diff = u8::from(stored.len() != probe.len());
    for (i, &p) in probe.iter().enumerate() {
        // Out-of-range reads compare against 0; `diff` is already
        // poisoned by the length mismatch in that case.
        let s = stored.get(i).copied().unwrap_or(0);
        diff |= s ^ p;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_ids_validate_like_wire_tags() {
        assert!(TenantId::new("gold").is_some());
        assert!(TenantId::new("a.b:c_d-e~2").is_some());
        assert!(TenantId::new("").is_none());
        assert!(TenantId::new("has space").is_none());
        assert!(TenantId::new("x".repeat(65)).is_none());
        assert!(TenantId::anonymous().is_anonymous());
    }

    #[test]
    fn builder_registers_and_authenticates() {
        let registry = TenantRegistry::builder()
            .tenant(Tenant::new(TenantId::new("gold").unwrap()).with_weight(3), "tok-gold")
            .unwrap()
            .tenant(Tenant::new(TenantId::new("bronze").unwrap()), "tok-bronze")
            .unwrap()
            .build();
        assert!(registry.auth_enabled());
        assert_eq!(registry.len(), 2);
        let gold = registry.authenticate("tok-gold").expect("valid token");
        assert_eq!(gold.id().as_str(), "gold");
        assert_eq!(gold.weight, 3);
        assert!(registry.authenticate("tok-GOLD").is_none());
        assert!(registry.authenticate("").is_none());
        assert!(registry.authenticate("tok-gol").is_none());
        assert!(registry.authenticate("tok-goldx").is_none());
        // Lookup by id, including the built-in anonymous tenant.
        assert!(registry.get(&TenantId::new("gold").unwrap()).is_some());
        assert!(registry.get(&TenantId::new("nope").unwrap()).is_none());
        assert!(registry.get(&TenantId::anonymous()).is_some());
    }

    #[test]
    fn unspeakable_tokens_are_rejected_at_registration() {
        // A token the AUTH grammar cannot carry must fail at build time
        // — not register silently and lock the tenant out later.
        let too_long = "x".repeat(129);
        let b = TenantRegistry::builder();
        assert!(b.tenant(Tenant::new(TenantId::new("a").unwrap()), &too_long).is_err());
        let b = TenantRegistry::builder();
        assert!(b.tenant(Tenant::new(TenantId::new("a").unwrap()), "has space").is_err());
        let b = TenantRegistry::builder();
        assert!(b.tenant(Tenant::new(TenantId::new("a").unwrap()), "").is_err());
        // A 128-char token is exactly at the wire cap and fine.
        let at_cap = "x".repeat(128);
        TenantRegistry::builder()
            .tenant(Tenant::new(TenantId::new("a").unwrap()), &at_cap)
            .unwrap();
    }

    #[test]
    fn config_lines_with_colon_tokens_fail_loudly() {
        // ':' is the field delimiter: a token containing one would
        // silently register a truncated secret, so the extra fields are
        // a hard error with a hint.
        let err = TenantRegistry::from_reader("gold:tok:part:3:64:0.5:100:200:0.75\n").unwrap_err();
        assert!(err.message.contains("too many fields"), "{err}");
        assert!(err.message.contains("builder API"), "{err}");
    }

    #[test]
    fn duplicate_ids_and_tokens_are_rejected() {
        let b = TenantRegistry::builder()
            .tenant(Tenant::new(TenantId::new("a").unwrap()), "t1")
            .unwrap();
        assert!(b.tenant(Tenant::new(TenantId::new("a").unwrap()), "t2").is_err());
        let b = TenantRegistry::builder()
            .tenant(Tenant::new(TenantId::new("a").unwrap()), "t1")
            .unwrap();
        assert!(b.tenant(Tenant::new(TenantId::new("b").unwrap()), "t1").is_err());
    }

    #[test]
    fn config_file_round_trips_all_fields() {
        let text = "\
# full spec
gold:gold-secret:3:64:0.75:100:200:0.75

bronze:bronze-secret:1
partial:partial-secret:2:8:-:5
";
        let registry = TenantRegistry::from_reader(text).unwrap();
        assert_eq!(registry.len(), 3);
        let gold = registry.authenticate("gold-secret").unwrap();
        assert_eq!(gold.weight, 3);
        assert_eq!(gold.max_inflight, Some(64));
        assert_eq!(gold.max_queue_share, Some(0.75));
        assert_eq!(gold.rate_limit, Some(RateLimit { per_sec: 100.0, burst: 200.0 }));
        assert_eq!(gold.cache_byte_share, Some(0.75));
        let bronze = registry.authenticate("bronze-secret").unwrap();
        assert_eq!(bronze.weight, 1);
        assert_eq!(bronze.max_inflight, None);
        assert_eq!(bronze.rate_limit, None);
        let partial = registry.authenticate("partial-secret").unwrap();
        assert_eq!(partial.max_inflight, Some(8));
        assert_eq!(partial.max_queue_share, None, "`-` means unset");
        assert_eq!(partial.rate_limit.unwrap().per_sec, 5.0);
        assert_eq!(partial.rate_limit.unwrap().burst, 5.0, "burst defaults to per_sec");
    }

    #[test]
    fn config_errors_carry_line_numbers() {
        let err = TenantRegistry::from_reader("gold:tok:3\nbad line\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = TenantRegistry::from_reader("gold:tok:zero\n").unwrap_err();
        assert!(err.message.contains("weight"), "{err}");
        // Typo'd quotas must fail loudly instead of `as`-casting to a
        // cap of 0 that silently locks the tenant out.
        for bad in ["gold:tok:1:-5", "gold:tok:1:0.9", "gold:tok:1:0", "gold:tok:2.9"] {
            let err = TenantRegistry::from_reader(bad).unwrap_err();
            assert!(err.message.contains("integer"), "{bad}: {err}");
        }
        for bad in ["gold:tok:1:8:1.5", "gold:tok:1:8:0", "gold:tok:1:8:-:-:-:-0.2"] {
            let err = TenantRegistry::from_reader(bad).unwrap_err();
            assert!(err.message.contains("fraction"), "{bad}: {err}");
        }
        assert!(TenantRegistry::from_reader("gold:tok:1:8:-:5:0.5\n").is_err(), "burst < 1");
        let err = TenantRegistry::from_reader("anonymous:tok:1\n").unwrap_err();
        assert!(err.message.contains("anonymous"), "{err}");
        let err = TenantRegistry::from_reader("a:tok:1\na:tok2:1\n").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
        let err = TenantRegistry::from_reader("sp ace:tok:1\n").unwrap_err();
        assert!(err.message.contains("invalid tenant id"), "{err}");
    }

    #[test]
    fn anonymous_only_registry_is_auth_off() {
        let registry = TenantRegistry::anonymous_only();
        assert!(!registry.auth_enabled());
        assert!(registry.authenticate("anything").is_none());
        assert!(registry.anonymous().id().is_anonymous());
        assert_eq!(registry.anonymous().weight, 1);
        assert!(registry.anonymous().max_inflight.is_none());
    }

    #[test]
    fn rate_bucket_enforces_burst_and_refunds() {
        let registry = TenantRegistry::builder()
            .tenant(
                // Zero refill rate isolates the burst accounting from
                // wall-clock: exactly `burst` takes succeed.
                Tenant::new(TenantId::new("t").unwrap()).with_rate_limit(0.0, 2.0),
                "tok",
            )
            .unwrap()
            .build();
        let t = registry.authenticate("tok").unwrap();
        assert!(registry.try_acquire_rate(&t));
        assert!(registry.try_acquire_rate(&t));
        assert!(!registry.try_acquire_rate(&t), "burst of 2 exhausted");
        registry.refund_rate(&t);
        assert!(registry.try_acquire_rate(&t), "refund restores one slot");
        assert!(!registry.try_acquire_rate(&t));
        // Unlimited tenants never block.
        let anon = registry.anonymous();
        for _ in 0..100 {
            assert!(registry.try_acquire_rate(&anon));
        }
    }

    #[test]
    fn constant_time_eq_matches_plain_equality() {
        let cases: [(&[u8], &[u8]); 7] = [
            (b"abc", b"abc"),
            (b"abc", b"abd"),
            (b"abc", b"ab"),
            (b"abc", b"abcd"),
            (b"", b""),
            (b"", b"x"),
            (b"x", b""),
        ];
        for (a, b) in cases {
            assert_eq!(constant_time_eq(a, b), a == b, "{a:?} vs {b:?}");
        }
        // Length-aliasing regression: 257 vs 1 XORs to 256, which a
        // u8-truncated length check would read as "equal lengths" and
        // then accept any 1-byte prefix of the stored token.
        let long = vec![b'a'; 257];
        assert!(!constant_time_eq(&long, b"a"));
        assert!(!constant_time_eq(b"a", &long));
        let long2 = vec![b'a'; 256];
        assert!(!constant_time_eq(&long2, b""));
    }
}

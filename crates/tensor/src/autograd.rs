//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! Define-by-run tape in the PyTorch style: every op builds a node holding
//! its parents and a backward closure. Calling [`Tensor::backward`] on a
//! scalar loss topologically sorts the reachable graph and accumulates
//! gradients into every tensor that needs them (parameters are leaves with
//! `requires_grad = true`).
//!
//! Gradient recording can be suspended with [`no_grad`] — generation
//! (Algorithm 1 of the paper) runs entirely inside a `no_grad` section.

use crate::matrix::Matrix;
use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::rc::Rc;

thread_local! {
    static GRAD_ENABLED: Cell<bool> = const { Cell::new(true) };
    static NEXT_ID: Cell<u64> = const { Cell::new(1) };
}

/// True when operations should record the autograd tape.
pub fn grad_enabled() -> bool {
    GRAD_ENABLED.with(|g| g.get())
}

/// Run `f` with gradient recording disabled (restores the previous state on
/// exit, including on panic).
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    struct Guard(bool);
    impl Drop for Guard {
        fn drop(&mut self) {
            GRAD_ENABLED.with(|g| g.set(self.0));
        }
    }
    let prev = GRAD_ENABLED.with(|g| g.replace(false));
    let _guard = Guard(prev);
    f()
}

fn next_id() -> u64 {
    NEXT_ID.with(|n| {
        let id = n.get();
        n.set(id + 1);
        id
    })
}

/// Backward function: `(grad_out, out_value, parents)` must accumulate
/// gradients into the parents via [`Tensor::accumulate_grad`].
pub type BackwardFn = Box<dyn Fn(&Matrix, &Matrix, &[Tensor])>;

struct Node {
    parents: Vec<Tensor>,
    backward: BackwardFn,
}

struct Inner {
    id: u64,
    value: RefCell<Matrix>,
    grad: RefCell<Option<Matrix>>,
    requires_grad: bool,
    node: Option<Node>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Unlink the parent chain iteratively: dropping a deep op chain
        // (e.g. a T-step recurrent tape) recursively would overflow the
        // stack for large T.
        let mut stack: Vec<Tensor> = match self.node.take() {
            Some(node) => node.parents,
            None => return,
        };
        while let Some(t) = stack.pop() {
            if let Some(mut inner) = Rc::into_inner(t.inner) {
                if let Some(node) = inner.node.take() {
                    stack.extend(node.parents);
                }
                // `inner` drops here with `node == None`: no recursion.
            }
        }
    }
}

/// A matrix value tracked (optionally) by the autograd tape.
///
/// Cloning a `Tensor` is cheap: it clones an `Rc` handle to shared storage.
#[derive(Clone)]
pub struct Tensor {
    inner: Rc<Inner>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tensor(id={}, {:?}, requires_grad={}, has_node={})",
            self.inner.id,
            self.inner.value.borrow().shape(),
            self.inner.requires_grad,
            self.inner.node.is_some()
        )
    }
}

impl Tensor {
    /// Create a leaf tensor. Use `requires_grad = true` for trainable
    /// parameters.
    pub fn leaf(value: Matrix, requires_grad: bool) -> Tensor {
        Tensor {
            inner: Rc::new(Inner {
                id: next_id(),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad,
                node: None,
            }),
        }
    }

    /// Constant (non-trainable) leaf.
    pub fn constant(value: Matrix) -> Tensor {
        Tensor::leaf(value, false)
    }

    /// Trainable parameter leaf.
    pub fn param(value: Matrix) -> Tensor {
        Tensor::leaf(value, true)
    }

    /// Create an op-result tensor when gradient recording is active and at
    /// least one parent participates in the tape; otherwise a detached leaf.
    pub fn from_op(value: Matrix, parents: Vec<Tensor>, backward: BackwardFn) -> Tensor {
        if grad_enabled() && parents.iter().any(|p| p.participates()) {
            Tensor {
                inner: Rc::new(Inner {
                    id: next_id(),
                    value: RefCell::new(value),
                    grad: RefCell::new(None),
                    requires_grad: false,
                    node: Some(Node { parents, backward }),
                }),
            }
        } else {
            Tensor::constant(value)
        }
    }

    /// Unique tape id (stable for the lifetime of the tensor; used by
    /// optimizers to key per-parameter state).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Whether this tensor is part of a gradient computation (trainable leaf
    /// or op result).
    pub fn participates(&self) -> bool {
        self.inner.requires_grad || self.inner.node.is_some()
    }

    /// Whether this is a trainable leaf.
    pub fn requires_grad(&self) -> bool {
        self.inner.requires_grad
    }

    /// Borrow the value.
    pub fn value(&self) -> std::cell::Ref<'_, Matrix> {
        self.inner.value.borrow()
    }

    /// Clone the value out.
    pub fn value_clone(&self) -> Matrix {
        self.inner.value.borrow().clone()
    }

    /// Shape of the value.
    pub fn shape(&self) -> (usize, usize) {
        self.inner.value.borrow().shape()
    }

    /// Scalar value of a `[1,1]` tensor.
    pub fn item(&self) -> f32 {
        self.inner.value.borrow().item()
    }

    /// Mutate the raw value in place. Only sane for leaves (optimizer steps,
    /// state resets); mutating interior nodes invalidates recorded tape
    /// values.
    pub fn set_value(&self, value: Matrix) {
        *self.inner.value.borrow_mut() = value;
    }

    /// Apply a function to the raw value in place (used by optimizers).
    pub fn update_value(&self, f: impl FnOnce(&mut Matrix)) {
        f(&mut self.inner.value.borrow_mut());
    }

    /// Borrow the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Matrix> {
        self.inner.grad.borrow().clone()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// Accumulate `delta` into this tensor's gradient buffer.
    pub fn accumulate_grad(&self, delta: &Matrix) {
        let mut slot = self.inner.grad.borrow_mut();
        match slot.as_mut() {
            Some(g) => g.add_assign(delta),
            None => *slot = Some(delta.clone()),
        }
    }

    /// Accumulate a gradient provided by value, avoiding a clone when the
    /// buffer is empty.
    pub fn accumulate_grad_owned(&self, delta: Matrix) {
        let mut slot = self.inner.grad.borrow_mut();
        match slot.as_mut() {
            Some(g) => g.add_assign(&delta),
            None => *slot = Some(delta),
        }
    }

    /// A detached copy: same value, no tape history, not trainable.
    pub fn detach(&self) -> Tensor {
        Tensor::constant(self.value_clone())
    }

    /// Run reverse-mode differentiation from this tensor.
    ///
    /// The seed gradient is a ones matrix of the same shape (for the usual
    /// scalar-loss case this is the scalar 1).
    pub fn backward(&self) {
        let (r, c) = self.shape();
        self.backward_with(Matrix::ones(r, c));
    }

    /// Reverse-mode differentiation with an explicit seed gradient.
    pub fn backward_with(&self, seed: Matrix) {
        assert_eq!(seed.shape(), self.shape(), "backward seed shape must match tensor shape");
        // Topological order via iterative post-order DFS.
        let mut order: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(Tensor, usize)> = vec![(self.clone(), 0)];
        visited.insert(self.id());
        while let Some((t, child_idx)) = stack.pop() {
            let n_parents = t.inner.node.as_ref().map_or(0, |n| n.parents.len());
            if child_idx < n_parents {
                let parent = t.inner.node.as_ref().unwrap().parents[child_idx].clone();
                stack.push((t, child_idx + 1));
                if parent.participates() && visited.insert(parent.id()) {
                    stack.push((parent, 0));
                }
            } else {
                order.push(t);
            }
        }
        self.accumulate_grad_owned(seed);
        for t in order.iter().rev() {
            let Some(node) = t.inner.node.as_ref() else {
                continue;
            };
            let grad = t.inner.grad.borrow().clone();
            let Some(grad) = grad else { continue };
            let value = t.inner.value.borrow();
            (node.backward)(&grad, &value, &node.parents);
            // Interior gradients are no longer needed once propagated; free
            // the buffer to bound tape memory (leaves keep theirs).
            if !t.inner.requires_grad {
                drop(value);
                *t.inner.grad.borrow_mut() = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn no_grad_suppresses_tape() {
        let a = Tensor::param(Matrix::scalar(2.0));
        let out = no_grad(|| ops::scale(&a, 3.0));
        assert!(!out.participates());
        assert!(grad_enabled(), "flag must be restored");
    }

    #[test]
    fn no_grad_restores_on_panic() {
        let result = std::panic::catch_unwind(|| {
            no_grad(|| panic!("boom"));
        });
        assert!(result.is_err());
        assert!(grad_enabled());
    }

    #[test]
    fn backward_on_chain_accumulates_leaf_grad() {
        // loss = sum(3 * a); d/da = 3 everywhere.
        let a = Tensor::param(Matrix::ones(2, 2));
        let loss = ops::sum_all(&ops::scale(&a, 3.0));
        loss.backward();
        let g = a.grad().unwrap();
        assert!(g.data().iter().all(|&x| (x - 3.0).abs() < 1e-6));
    }

    #[test]
    fn grad_accumulates_across_backward_calls() {
        let a = Tensor::param(Matrix::scalar(1.0));
        let l1 = ops::scale(&a, 2.0);
        l1.backward();
        let l2 = ops::scale(&a, 2.0);
        l2.backward();
        assert!((a.grad().unwrap().item() - 4.0).abs() < 1e-6);
        a.zero_grad();
        assert!(a.grad().is_none());
    }

    #[test]
    fn diamond_graph_sums_both_paths() {
        // loss = sum(a*2 + a*5) => dloss/da = 7
        let a = Tensor::param(Matrix::scalar(1.0));
        let l = ops::add(&ops::scale(&a, 2.0), &ops::scale(&a, 5.0));
        let loss = ops::sum_all(&l);
        loss.backward();
        assert!((a.grad().unwrap().item() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn shared_subexpression_visited_once() {
        // b = a*2 used twice; d(sum(b+b))/da = 4
        let a = Tensor::param(Matrix::scalar(1.0));
        let b = ops::scale(&a, 2.0);
        let loss = ops::sum_all(&ops::add(&b, &b));
        loss.backward();
        assert!((a.grad().unwrap().item() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn detach_blocks_gradient_flow() {
        let a = Tensor::param(Matrix::scalar(3.0));
        let b = ops::scale(&a, 2.0).detach();
        let loss = ops::sum_all(&ops::scale(&b, 5.0));
        loss.backward();
        assert!(a.grad().is_none());
    }

    #[test]
    fn constants_do_not_build_nodes() {
        let a = Tensor::constant(Matrix::scalar(1.0));
        let b = Tensor::constant(Matrix::scalar(2.0));
        let c = ops::add(&a, &b);
        assert!(!c.participates());
    }

    #[test]
    fn deep_chain_backward_is_iterative() {
        // 20k-deep chain would overflow the stack with recursive DFS.
        let a = Tensor::param(Matrix::scalar(0.0));
        let mut x = ops::add_scalar(&a, 0.0);
        for _ in 0..20_000 {
            x = ops::add_scalar(&x, 1.0);
        }
        let loss = ops::sum_all(&x);
        loss.backward();
        assert!((a.grad().unwrap().item() - 1.0).abs() < 1e-6);
    }
}

//! # vrdag-tensor
//!
//! Dense `f32` matrices, reverse-mode automatic differentiation, and the
//! neural-network building blocks needed to reproduce the VRDAG model
//! (*Efficient Dynamic Attributed Graph Generation*, ICDE 2025) without any
//! external ML framework.
//!
//! The crate is organized as:
//!
//! * [`matrix`] — row-major dense [`Matrix`] and its kernels (blocked
//!   parallel matmul, transpose-free `A·Bᵀ` / `Aᵀ·B`, reductions).
//! * [`autograd`] — the define-by-run tape: [`Tensor`], [`no_grad`],
//!   [`Tensor::backward`].
//! * [`ops`] — differentiable operations, including the graph-specific
//!   primitives the paper's encoder/decoder need: CSR neighbor aggregation
//!   ([`ops::spmm_sum`]) and per-destination softmax
//!   ([`ops::segment_softmax`]) for GAT attention.
//! * [`nn`] — `Linear`, `Mlp`, `GruCell`, activations.
//! * [`optim`] — Adam / SGD and global-norm gradient clipping.
//! * [`par`] — scoped-thread helpers used by the hot kernels.
//! * [`testing`] — finite-difference gradient checking, shared by the tests
//!   of every downstream crate.
//!
//! ## Example
//!
//! ```
//! use vrdag_tensor::{Matrix, Tensor, ops, nn, optim};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mlp = nn::Mlp::new(&[2, 8, 1], nn::Activation::Tanh, nn::Activation::Identity, &mut rng);
//! let x = Tensor::constant(Matrix::from_vec(4, 2, vec![0.,0., 0.,1., 1.,0., 1.,1.]));
//! let y = std::rc::Rc::new(Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]));
//! let mut adam = optim::Adam::new(0.05);
//! let params = mlp.parameters();
//! for _ in 0..50 {
//!     optim::zero_grad(&params);
//!     let loss = ops::mse_loss(&mlp.forward(&x), y.clone());
//!     loss.backward();
//!     adam.step(&params);
//! }
//! ```

pub mod autograd;
pub mod matrix;
pub mod nn;
pub mod ops;
pub mod optim;
pub mod par;
pub mod testing;

pub use autograd::{grad_enabled, no_grad, Tensor};
pub use matrix::Matrix;

//! Dense row-major `f32` matrix with the kernels needed by the VRDAG model.
//!
//! This is deliberately a small, predictable 2-D type rather than a general
//! n-d array: every tensor in the paper is either a node-feature matrix
//! `[N, d]`, a weight matrix `[d_in, d_out]`, a bias row `[1, d]`, or a
//! scalar loss `[1, 1]`.

use crate::par;
use rand::Rng;

/// Row-major dense matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix[{}x{}]", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// All-ones matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Matrix { rows, cols, data: vec![v; rows * cols] }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Build element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// A `[1, 1]` matrix holding a single scalar.
    pub fn scalar(v: f32) -> Self {
        Matrix::from_vec(1, 1, vec![v])
    }

    /// Uniform random matrix on `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
        Matrix { rows, cols, data }
    }

    /// Standard-normal random matrix (Box–Muller; `rand_distr` is not a
    /// dependency of this workspace).
    pub fn rand_normal(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut impl Rng) -> Self {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let (z0, z1) = box_muller(rng);
            data.push(mean + std * z0);
            if data.len() < n {
                data.push(mean + std * z1);
            }
        }
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
    pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Matrix::rand_uniform(fan_in, fan_out, -limit, limit, rng)
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume and return the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a `[1,1]` matrix.
    ///
    /// # Panics
    /// Panics when the matrix is not `1x1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 matrix");
        self.data[0]
    }

    /// Set every element to `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Element-wise map in place (parallel for large matrices).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        if self.data.len() >= 1 << 16 {
            let cols = self.cols.max(1);
            par::par_row_chunks_mut(&mut self.data, cols, 64, |_, chunk| {
                chunk.iter_mut().for_each(|x| *x = f(*x));
            });
        } else {
            self.data.iter_mut().for_each(|x| *x = f(*x));
        }
    }

    /// Element-wise combination of two same-shape matrices.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        let data = self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// `self += other`
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += alpha * other`
    pub fn scaled_add_assign(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "scaled_add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// `self *= alpha`
    pub fn scale_assign(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty matrices).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute element (0 for empty).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `C = A · B` (standard matrix product, parallel over row blocks).
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, b.rows,
            "matmul shape mismatch: [{},{}] x [{},{}]",
            self.rows, self.cols, b.rows, b.cols
        );
        let (m, k, n) = (self.rows, self.cols, b.cols);
        let mut out = Matrix::zeros(m, n);
        let a = &self.data;
        let bd = &b.data;
        par::par_row_chunks_mut(&mut out.data, n.max(1), 8, |row0, chunk| {
            for (ri, out_row) in chunk.chunks_exact_mut(n).enumerate() {
                let i = row0 + ri;
                let a_row = &a[i * k..(i + 1) * k];
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &bd[kk * n..(kk + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += aik * bv;
                    }
                }
            }
        });
        out
    }

    /// `C = A · Bᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, b: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, b.cols,
            "matmul_nt shape mismatch: [{},{}] x [{},{}]^T",
            self.rows, self.cols, b.rows, b.cols
        );
        let (m, k, n) = (self.rows, self.cols, b.rows);
        let mut out = Matrix::zeros(m, n);
        let a = &self.data;
        let bd = &b.data;
        par::par_row_chunks_mut(&mut out.data, n.max(1), 8, |row0, chunk| {
            for (ri, out_row) in chunk.chunks_exact_mut(n).enumerate() {
                let i = row0 + ri;
                let a_row = &a[i * k..(i + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &bd[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (x, y) in a_row.iter().zip(b_row.iter()) {
                        acc += x * y;
                    }
                    *o = acc;
                }
            }
        });
        out
    }

    /// `C = Aᵀ · B` without materializing the transpose.
    pub fn matmul_tn(&self, b: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, b.rows,
            "matmul_tn shape mismatch: [{},{}]^T x [{},{}]",
            self.rows, self.cols, b.rows, b.cols
        );
        let (m, k, n) = (self.rows, self.cols, b.cols);
        // out is [k, n]; accumulate row i of A scaled into out rows.
        let mut out = Matrix::zeros(k, n);
        let a = &self.data;
        let bd = &b.data;
        // Parallelize over columns of A (rows of the output) to keep writes
        // disjoint: thread handling output rows [lo,hi) scans all of A/B.
        let nt = par::num_threads().min(k).max(1);
        if nt <= 1 || k * n < 4096 {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let b_row = &bd[i * n..(i + 1) * n];
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let out_row = &mut out.data[kk * n..(kk + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += aik * bv;
                    }
                }
            }
        } else {
            par::par_row_chunks_mut(&mut out.data, n, 1, |row0, chunk| {
                let rows_here = chunk.len() / n;
                for i in 0..m {
                    let a_row = &a[i * k..(i + 1) * k];
                    let b_row = &bd[i * n..(i + 1) * n];
                    for r in 0..rows_here {
                        let aik = a_row[row0 + r];
                        if aik == 0.0 {
                            continue;
                        }
                        let out_row = &mut chunk[r * n..(r + 1) * n];
                        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                            *o += aik * bv;
                        }
                    }
                }
            });
        }
        out
    }

    /// Concatenate matrices horizontally (same row count).
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "concat_cols requires equal row counts");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            let out_row = &mut out.data[r * cols..(r + 1) * cols];
            for p in parts {
                out_row[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Stack matrices vertically (same column count).
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let cols = parts[0].cols;
        assert!(parts.iter().all(|p| p.cols == cols), "concat_rows requires equal column counts");
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Copy of the sub-matrix of columns `lo..hi`.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.cols, "slice_cols out of bounds");
        let mut out = Matrix::zeros(self.rows, hi - lo);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[lo..hi]);
        }
        out
    }

    /// Copy of the sub-matrix of rows selected by `idx` (with repetition
    /// allowed).
    pub fn gather_rows(&self, idx: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (r, &i) in idx.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i as usize));
        }
        out
    }

    /// Per-row sums as an `[rows, 1]` column.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Per-column sums as a `[1, cols]` row.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }
}

/// One Box–Muller draw: two independent standard normal samples.
fn box_muller(rng: &mut impl Rng) -> (f32, f32) {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn constructors_have_expected_shapes() {
        assert_eq!(Matrix::zeros(3, 4).shape(), (3, 4));
        assert_eq!(Matrix::ones(2, 2).sum(), 4.0);
        assert_eq!(Matrix::scalar(7.0).item(), 7.0);
        assert_eq!(Matrix::full(2, 3, 0.5).mean(), 0.5);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(1);
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (17, 9, 23), (64, 32, 48)] {
            let a = Matrix::rand_uniform(m, k, -1.0, 1.0, &mut rng);
            let b = Matrix::rand_uniform(k, n, -1.0, 1.0, &mut rng);
            assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4);
        }
    }

    #[test]
    fn matmul_nt_matches_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::rand_uniform(13, 7, -1.0, 1.0, &mut rng);
        let b = Matrix::rand_uniform(11, 7, -1.0, 1.0, &mut rng);
        assert_close(&a.matmul_nt(&b), &a.matmul(&b.transpose()), 1e-4);
    }

    #[test]
    fn matmul_tn_matches_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::rand_uniform(9, 6, -1.0, 1.0, &mut rng);
        let b = Matrix::rand_uniform(9, 8, -1.0, 1.0, &mut rng);
        assert_close(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-4);
    }

    #[test]
    fn matmul_tn_parallel_path_matches() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Matrix::rand_uniform(70, 90, -1.0, 1.0, &mut rng);
        let b = Matrix::rand_uniform(70, 110, -1.0, 1.0, &mut rng);
        assert_close(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-3);
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::rand_uniform(5, 9, -1.0, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn concat_and_slice_cols_round_trip() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Matrix::rand_uniform(4, 3, -1.0, 1.0, &mut rng);
        let b = Matrix::rand_uniform(4, 5, -1.0, 1.0, &mut rng);
        let cat = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(cat.shape(), (4, 8));
        assert_eq!(cat.slice_cols(0, 3), a);
        assert_eq!(cat.slice_cols(3, 8), b);
    }

    #[test]
    fn concat_rows_stacks() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let cat = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(cat.shape(), (3, 2));
        assert_eq!(cat.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn gather_rows_picks_rows() {
        let a = Matrix::from_fn(5, 2, |r, c| (r * 10 + c) as f32);
        let g = a.gather_rows(&[4, 0, 4]);
        assert_eq!(g.row(0), &[40.0, 41.0]);
        assert_eq!(g.row(1), &[0.0, 1.0]);
        assert_eq!(g.row(2), &[40.0, 41.0]);
    }

    #[test]
    fn reductions_match_manual() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum(), 21.0);
        assert!((a.mean() - 3.5).abs() < 1e-6);
        assert_eq!(a.sum_cols().into_vec(), vec![6.0, 15.0]);
        assert_eq!(a.sum_rows().into_vec(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn rand_normal_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::rand_normal(200, 200, 1.0, 2.0, &mut rng);
        let mean = a.mean();
        let var =
            a.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / (a.len() - 1) as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn xavier_uniform_is_bounded() {
        let mut rng = StdRng::seed_from_u64(8);
        let w = Matrix::xavier_uniform(64, 32, &mut rng);
        let limit = (6.0f32 / 96.0).sqrt();
        assert!(w.max_abs() <= limit);
    }

    #[test]
    fn map_inplace_parallel_path() {
        let mut big = Matrix::ones(300, 300);
        big.map_inplace(|x| x * 2.0);
        assert_eq!(big.sum(), 180_000.0);
    }

    #[test]
    fn has_non_finite_detects_nan() {
        let mut a = Matrix::zeros(2, 2);
        assert!(!a.has_non_finite());
        a.set(1, 1, f32::NAN);
        assert!(a.has_non_finite());
    }
}

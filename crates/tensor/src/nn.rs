//! Neural-network building blocks: linear layers, MLPs (the paper's
//! `f_in`/`f_out`/`f_agg`/`f_pool`/`f_α`/`f_θ`), and the GRU cell of the
//! recurrence state updater (§III-D).

use crate::autograd::Tensor;
use crate::matrix::Matrix;
use crate::ops;
use rand::Rng;

/// Activation functions used across the paper's MLPs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Activation {
    Identity,
    Relu,
    /// Leaky ReLU with the given negative slope (the paper's ω, Eq. 4).
    LeakyRelu(f32),
    Sigmoid,
    Tanh,
}

impl Activation {
    /// Apply to a tensor.
    pub fn apply(&self, x: &Tensor) -> Tensor {
        match self {
            Activation::Identity => x.clone(),
            Activation::Relu => ops::relu(x),
            Activation::LeakyRelu(s) => ops::leaky_relu(x, *s),
            Activation::Sigmoid => ops::sigmoid(x),
            Activation::Tanh => ops::tanh(x),
        }
    }

    /// Apply to a plain matrix (inference path).
    pub fn apply_matrix(&self, x: &mut Matrix) {
        match self {
            Activation::Identity => {}
            Activation::Relu => x.map_inplace(|v| v.max(0.0)),
            Activation::LeakyRelu(s) => {
                let s = *s;
                x.map_inplace(move |v| if v > 0.0 { v } else { s * v })
            }
            Activation::Sigmoid => x.map_inplace(|v| 1.0 / (1.0 + (-v).exp())),
            Activation::Tanh => x.map_inplace(|v| v.tanh()),
        }
    }
}

/// Fully connected layer `y = x·W + b`.
#[derive(Clone)]
pub struct Linear {
    pub weight: Tensor,
    pub bias: Tensor,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(d_in: usize, d_out: usize, rng: &mut impl Rng) -> Self {
        Linear {
            weight: Tensor::param(Matrix::xavier_uniform(d_in, d_out, rng)),
            bias: Tensor::param(Matrix::zeros(1, d_out)),
        }
    }

    pub fn forward(&self, x: &Tensor) -> Tensor {
        ops::add_row(&ops::matmul(x, &self.weight), &self.bias)
    }

    /// Inference-path forward on a plain matrix (no tape).
    pub fn forward_matrix(&self, x: &Matrix) -> Matrix {
        let mut out = x.matmul(&self.weight.value());
        let b = self.bias.value();
        for r in 0..out.rows() {
            for (o, &bv) in out.row_mut(r).iter_mut().zip(b.row(0).iter()) {
                *o += bv;
            }
        }
        out
    }

    pub fn d_in(&self) -> usize {
        self.weight.shape().0
    }

    pub fn d_out(&self) -> usize {
        self.weight.shape().1
    }

    pub fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// Multi-layer perceptron with a shared hidden activation and an optional
/// output activation.
#[derive(Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_act: Activation,
    output_act: Activation,
}

impl Mlp {
    /// Build an MLP with the given layer widths, e.g. `[d_in, h, d_out]`.
    ///
    /// # Panics
    /// Panics when fewer than two widths are given.
    pub fn new(
        widths: &[usize],
        hidden_act: Activation,
        output_act: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(widths.len() >= 2, "an MLP needs at least [d_in, d_out]");
        let layers = widths.windows(2).map(|w| Linear::new(w[0], w[1], rng)).collect();
        Mlp { layers, hidden_act, output_act }
    }

    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            h = if i == last { self.output_act.apply(&h) } else { self.hidden_act.apply(&h) };
        }
        h
    }

    /// Inference-path forward on a plain matrix (no tape).
    pub fn forward_matrix(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward_matrix(&h);
            if i == last {
                self.output_act.apply_matrix(&mut h);
            } else {
                self.hidden_act.apply_matrix(&mut h);
            }
        }
        h
    }

    pub fn d_in(&self) -> usize {
        self.layers[0].d_in()
    }

    pub fn d_out(&self) -> usize {
        self.layers.last().unwrap().d_out()
    }

    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    pub fn layer(&self, i: usize) -> &Linear {
        &self.layers[i]
    }

    pub fn parameters(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }
}

/// Gated recurrent unit cell (Cho et al.), used as the recurrence state
/// updater (§III-D):
///
/// ```text
/// r  = σ(x·Wxr + h·Whr + br)
/// z  = σ(x·Wxz + h·Whz + bz)
/// ñ  = tanh(x·Wxn + r ⊙ (h·Whn) + bn)
/// h' = (1 − z) ⊙ ñ + z ⊙ h
/// ```
#[derive(Clone)]
pub struct GruCell {
    wxr: Tensor,
    whr: Tensor,
    br: Tensor,
    wxz: Tensor,
    whz: Tensor,
    bz: Tensor,
    wxn: Tensor,
    whn: Tensor,
    bn: Tensor,
    d_hidden: usize,
}

impl GruCell {
    pub fn new(d_in: usize, d_hidden: usize, rng: &mut impl Rng) -> Self {
        let w = |i, o, rng: &mut _| Tensor::param(Matrix::xavier_uniform(i, o, rng));
        GruCell {
            wxr: w(d_in, d_hidden, rng),
            whr: w(d_hidden, d_hidden, rng),
            br: Tensor::param(Matrix::zeros(1, d_hidden)),
            wxz: w(d_in, d_hidden, rng),
            whz: w(d_hidden, d_hidden, rng),
            // Bias the update gate towards keeping state early in training.
            bz: Tensor::param(Matrix::full(1, d_hidden, 1.0)),
            wxn: w(d_in, d_hidden, rng),
            whn: w(d_hidden, d_hidden, rng),
            bn: Tensor::param(Matrix::zeros(1, d_hidden)),
            d_hidden,
        }
    }

    pub fn d_hidden(&self) -> usize {
        self.d_hidden
    }

    pub fn d_in(&self) -> usize {
        self.wxr.shape().0
    }

    /// One step: `x: [n, d_in]`, `h: [n, d_hidden]` → new hidden `[n, d_hidden]`.
    pub fn forward(&self, x: &Tensor, h: &Tensor) -> Tensor {
        let r = ops::sigmoid(&ops::add_row(
            &ops::add(&ops::matmul(x, &self.wxr), &ops::matmul(h, &self.whr)),
            &self.br,
        ));
        let z = ops::sigmoid(&ops::add_row(
            &ops::add(&ops::matmul(x, &self.wxz), &ops::matmul(h, &self.whz)),
            &self.bz,
        ));
        let n = ops::tanh(&ops::add_row(
            &ops::add(&ops::matmul(x, &self.wxn), &ops::mul(&r, &ops::matmul(h, &self.whn))),
            &self.bn,
        ));
        ops::add(&ops::mul(&ops::one_minus(&z), &n), &ops::mul(&z, h))
    }

    pub fn parameters(&self) -> Vec<Tensor> {
        vec![
            self.wxr.clone(),
            self.whr.clone(),
            self.br.clone(),
            self.wxz.clone(),
            self.whz.clone(),
            self.bz.clone(),
            self.wxn.clone(),
            self.whn.clone(),
            self.bn.clone(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(4, 3, &mut rng);
        let x = Tensor::constant(Matrix::ones(2, 4));
        assert_eq!(l.forward(&x).shape(), (2, 3));
        assert_eq!(l.d_in(), 4);
        assert_eq!(l.d_out(), 3);
        assert_eq!(l.parameters().len(), 2);
    }

    #[test]
    fn linear_matrix_path_matches_tensor_path() {
        let mut rng = StdRng::seed_from_u64(2);
        let l = Linear::new(5, 4, &mut rng);
        let x = Matrix::rand_uniform(3, 5, -1.0, 1.0, &mut rng);
        let a = l.forward(&Tensor::constant(x.clone())).value_clone();
        let b = l.forward_matrix(&x);
        for (u, v) in a.data().iter().zip(b.data().iter()) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn mlp_matrix_path_matches_tensor_path() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&[6, 8, 3], Activation::LeakyRelu(0.2), Activation::Sigmoid, &mut rng);
        let x = Matrix::rand_uniform(4, 6, -1.0, 1.0, &mut rng);
        let a = mlp.forward(&Tensor::constant(x.clone())).value_clone();
        let b = mlp.forward_matrix(&x);
        for (u, v) in a.data().iter().zip(b.data().iter()) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn mlp_end_to_end_gradient() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::new(&[3, 5, 2], Activation::Tanh, Activation::Identity, &mut rng);
        check_gradients(&[(4, 3)], move |t| mlp.forward(&t[0]), "mlp_input_grad");
    }

    #[test]
    fn gru_step_shape_and_gradient() {
        let mut rng = StdRng::seed_from_u64(5);
        let cell = GruCell::new(3, 4, &mut rng);
        let x = Tensor::constant(Matrix::ones(2, 3));
        let h = Tensor::constant(Matrix::zeros(2, 4));
        assert_eq!(cell.forward(&x, &h).shape(), (2, 4));
        assert_eq!(cell.parameters().len(), 9);

        let cell2 = GruCell::new(3, 4, &mut rng);
        check_gradients(&[(2, 3), (2, 4)], move |t| cell2.forward(&t[0], &t[1]), "gru_cell");
    }

    #[test]
    fn gru_with_zero_update_gate_keeps_candidate() {
        // With bz very negative, z≈0 and h' ≈ tanh candidate; with bz very
        // positive, z≈1 and h' ≈ h.
        let mut rng = StdRng::seed_from_u64(6);
        let mut cell = GruCell::new(2, 2, &mut rng);
        cell.bz = Tensor::param(Matrix::full(1, 2, 50.0));
        let x = Tensor::constant(Matrix::ones(1, 2));
        let h = Tensor::constant(Matrix::from_vec(1, 2, vec![0.7, -0.3]));
        let out = cell.forward(&x, &h).value_clone();
        assert!((out.get(0, 0) - 0.7).abs() < 1e-3);
        assert!((out.get(0, 1) + 0.3).abs() < 1e-3);
    }

    #[test]
    fn activation_matrix_matches_tensor() {
        let acts = [
            Activation::Identity,
            Activation::Relu,
            Activation::LeakyRelu(0.1),
            Activation::Sigmoid,
            Activation::Tanh,
        ];
        let x = Matrix::from_vec(1, 4, vec![-2.0, -0.5, 0.5, 2.0]);
        for a in acts {
            let t = a.apply(&Tensor::constant(x.clone())).value_clone();
            let mut m = x.clone();
            a.apply_matrix(&mut m);
            for (u, v) in t.data().iter().zip(m.data().iter()) {
                assert!((u - v).abs() < 1e-6, "{a:?}");
            }
        }
    }
}

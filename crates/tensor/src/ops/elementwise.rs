//! Element-wise and broadcasting operations.

use crate::autograd::Tensor;
use crate::matrix::Matrix;

fn assert_same_shape(a: &Tensor, b: &Tensor, op: &str) {
    assert_eq!(a.shape(), b.shape(), "{op}: shape mismatch {:?} vs {:?}", a.shape(), b.shape());
}

/// `a + b` (same shape).
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_same_shape(a, b, "add");
    let value = {
        let av = a.value();
        let bv = b.value();
        av.zip_map(&bv, |x, y| x + y)
    };
    Tensor::from_op(
        value,
        vec![a.clone(), b.clone()],
        Box::new(|g, _out, parents| {
            for p in parents {
                if p.participates() {
                    p.accumulate_grad(g);
                }
            }
        }),
    )
}

/// `a - b` (same shape).
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    assert_same_shape(a, b, "sub");
    let value = {
        let av = a.value();
        let bv = b.value();
        av.zip_map(&bv, |x, y| x - y)
    };
    Tensor::from_op(
        value,
        vec![a.clone(), b.clone()],
        Box::new(|g, _out, parents| {
            if parents[0].participates() {
                parents[0].accumulate_grad(g);
            }
            if parents[1].participates() {
                parents[1].accumulate_grad_owned(g.map(|x| -x));
            }
        }),
    )
}

/// Hadamard product `a ⊙ b` (same shape).
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_same_shape(a, b, "mul");
    let value = {
        let av = a.value();
        let bv = b.value();
        av.zip_map(&bv, |x, y| x * y)
    };
    Tensor::from_op(
        value,
        vec![a.clone(), b.clone()],
        Box::new(|g, _out, parents| {
            if parents[0].participates() {
                let bv = parents[1].value();
                parents[0].accumulate_grad_owned(g.zip_map(&bv, |gv, y| gv * y));
            }
            if parents[1].participates() {
                let av = parents[0].value();
                parents[1].accumulate_grad_owned(g.zip_map(&av, |gv, x| gv * x));
            }
        }),
    )
}

/// Element-wise division `a / b` (same shape).
pub fn div(a: &Tensor, b: &Tensor) -> Tensor {
    assert_same_shape(a, b, "div");
    let value = {
        let av = a.value();
        let bv = b.value();
        av.zip_map(&bv, |x, y| x / y)
    };
    Tensor::from_op(
        value,
        vec![a.clone(), b.clone()],
        Box::new(|g, out, parents| {
            let bv = parents[1].value();
            if parents[0].participates() {
                parents[0].accumulate_grad_owned(g.zip_map(&bv, |gv, y| gv / y));
            }
            if parents[1].participates() {
                // d(a/b)/db = -a/b^2 = -out/b
                let mut gb = g.zip_map(out, |gv, o| gv * o);
                gb = gb.zip_map(&bv, |v, y| -v / y);
                parents[1].accumulate_grad_owned(gb);
            }
        }),
    )
}

/// Broadcast-add a `[1, c]` bias row to every row of `a` (`[r, c]`).
pub fn add_row(a: &Tensor, bias: &Tensor) -> Tensor {
    let (ar, ac) = a.shape();
    let (br, bc) = bias.shape();
    assert_eq!((br, bc), (1, ac), "add_row: bias must be [1,{ac}], got [{br},{bc}]");
    let value = {
        let av = a.value();
        let bv = bias.value();
        let mut out = av.clone();
        for r in 0..ar {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bv.row(0).iter()) {
                *o += b;
            }
        }
        out
    };
    Tensor::from_op(
        value,
        vec![a.clone(), bias.clone()],
        Box::new(|g, _out, parents| {
            if parents[0].participates() {
                parents[0].accumulate_grad(g);
            }
            if parents[1].participates() {
                parents[1].accumulate_grad_owned(g.sum_rows());
            }
        }),
    )
}

/// Broadcast-multiply each row `r` of `a` (`[r, c]`) by `col[r]` (`[r, 1]`).
pub fn mul_col(a: &Tensor, col: &Tensor) -> Tensor {
    let (ar, _ac) = a.shape();
    let (cr, cc) = col.shape();
    assert_eq!((cr, cc), (ar, 1), "mul_col: column must be [{ar},1], got [{cr},{cc}]");
    let value = {
        let av = a.value();
        let cv = col.value();
        let mut out = av.clone();
        for r in 0..ar {
            let s = cv.get(r, 0);
            out.row_mut(r).iter_mut().for_each(|x| *x *= s);
        }
        out
    };
    Tensor::from_op(
        value,
        vec![a.clone(), col.clone()],
        Box::new(|g, _out, parents| {
            let (rows, _) = g.shape();
            if parents[0].participates() {
                let cv = parents[1].value();
                let mut ga = g.clone();
                for r in 0..rows {
                    let s = cv.get(r, 0);
                    ga.row_mut(r).iter_mut().for_each(|x| *x *= s);
                }
                parents[0].accumulate_grad_owned(ga);
            }
            if parents[1].participates() {
                let av = parents[0].value();
                let mut gc = Matrix::zeros(rows, 1);
                for r in 0..rows {
                    let dot: f32 = g.row(r).iter().zip(av.row(r)).map(|(x, y)| x * y).sum();
                    gc.set(r, 0, dot);
                }
                parents[1].accumulate_grad_owned(gc);
            }
        }),
    )
}

/// Multiply every element of `a` by a learnable `[1,1]` scalar tensor
/// (used for GIN's `(1+ε)·h` term, Eq. 5 of the VRDAG paper).
pub fn mul_scalar_t(a: &Tensor, s: &Tensor) -> Tensor {
    assert_eq!(s.shape(), (1, 1), "mul_scalar_t: scalar must be [1,1]");
    let sv = s.item();
    let value = a.value().map(|x| sv * x);
    Tensor::from_op(
        value,
        vec![a.clone(), s.clone()],
        Box::new(|g, _out, parents| {
            if parents[0].participates() {
                let sv = parents[1].item();
                parents[0].accumulate_grad_owned(g.map(|x| sv * x));
            }
            if parents[1].participates() {
                let av = parents[0].value();
                let dot: f32 = g.data().iter().zip(av.data().iter()).map(|(x, y)| x * y).sum();
                parents[1].accumulate_grad_owned(Matrix::scalar(dot));
            }
        }),
    )
}

/// `k * a`.
pub fn scale(a: &Tensor, k: f32) -> Tensor {
    let value = a.value().map(|x| k * x);
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            if parents[0].participates() {
                parents[0].accumulate_grad_owned(g.map(|x| k * x));
            }
        }),
    )
}

/// `a + k` element-wise.
pub fn add_scalar(a: &Tensor, k: f32) -> Tensor {
    let value = a.value().map(|x| x + k);
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(|g, _out, parents| {
            if parents[0].participates() {
                parents[0].accumulate_grad(g);
            }
        }),
    )
}

/// `-a`.
pub fn neg(a: &Tensor) -> Tensor {
    scale(a, -1.0)
}

/// `1 - a` element-wise (common in GRU gates).
pub fn one_minus(a: &Tensor) -> Tensor {
    let value = a.value().map(|x| 1.0 - x);
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(|g, _out, parents| {
            if parents[0].participates() {
                parents[0].accumulate_grad_owned(g.map(|x| -x));
            }
        }),
    )
}

/// Element-wise clamp to `[lo, hi]` with zero gradient outside the range
/// (used to bound predicted log-variances for a numerically stable KL).
pub fn clamp(a: &Tensor, lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "clamp: lo must be < hi");
    let value = a.value().map(|x| x.clamp(lo, hi));
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            if parents[0].participates() {
                let av = parents[0].value();
                parents[0].accumulate_grad_owned(g.zip_map(&av, |gv, x| {
                    if x > lo && x < hi {
                        gv
                    } else {
                        0.0
                    }
                }));
            }
        }),
    )
}

/// Logistic sigmoid.
pub fn sigmoid(a: &Tensor) -> Tensor {
    let value = a.value().map(|x| 1.0 / (1.0 + (-x).exp()));
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(|g, out, parents| {
            if parents[0].participates() {
                parents[0].accumulate_grad_owned(g.zip_map(out, |gv, y| gv * y * (1.0 - y)));
            }
        }),
    )
}

/// Hyperbolic tangent.
pub fn tanh(a: &Tensor) -> Tensor {
    let value = a.value().map(|x| x.tanh());
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(|g, out, parents| {
            if parents[0].participates() {
                parents[0].accumulate_grad_owned(g.zip_map(out, |gv, y| gv * (1.0 - y * y)));
            }
        }),
    )
}

/// Rectified linear unit.
pub fn relu(a: &Tensor) -> Tensor {
    let value = a.value().map(|x| x.max(0.0));
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(|g, out, parents| {
            if parents[0].participates() {
                parents[0]
                    .accumulate_grad_owned(g.zip_map(out, |gv, y| if y > 0.0 { gv } else { 0.0 }));
            }
        }),
    )
}

/// Leaky ReLU with negative-side slope `slope` (the paper's ω(·), Eq. 4).
pub fn leaky_relu(a: &Tensor, slope: f32) -> Tensor {
    assert!(slope > 0.0 && slope < 1.0, "leaky_relu slope must be in (0,1)");
    let value = a.value().map(|x| if x > 0.0 { x } else { slope * x });
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(move |g, out, parents| {
            if parents[0].participates() {
                // out has the sign of the input because slope > 0.
                parents[0].accumulate_grad_owned(g.zip_map(out, |gv, y| {
                    if y > 0.0 {
                        gv
                    } else {
                        slope * gv
                    }
                }));
            }
        }),
    )
}

/// Element-wise exponential.
pub fn exp(a: &Tensor) -> Tensor {
    let value = a.value().map(|x| x.exp());
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(|g, out, parents| {
            if parents[0].participates() {
                parents[0].accumulate_grad_owned(g.zip_map(out, |gv, y| gv * y));
            }
        }),
    )
}

/// Element-wise natural log of `max(x, eps)` (numerically safe log).
pub fn ln_eps(a: &Tensor, eps: f32) -> Tensor {
    assert!(eps > 0.0, "ln_eps requires positive eps");
    let value = a.value().map(|x| x.max(eps).ln());
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            if parents[0].participates() {
                let av = parents[0].value();
                parents[0].accumulate_grad_owned(g.zip_map(&av, |gv, x| gv / x.max(eps)));
            }
        }),
    )
}

/// Element-wise power `x^p` (callers must keep the base non-negative when
/// `p` is fractional; used for the SCE loss where the base is `1 - cos ≥ 0`).
pub fn powf(a: &Tensor, p: f32) -> Tensor {
    let value = a.value().map(|x| x.powf(p));
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            if parents[0].participates() {
                let av = parents[0].value();
                parents[0].accumulate_grad_owned(g.zip_map(&av, |gv, x| {
                    let d = p * x.powf(p - 1.0);
                    if d.is_finite() {
                        gv * d
                    } else {
                        0.0
                    }
                }));
            }
        }),
    )
}

/// Row-wise softmax (used for the α mixture weights, Eq. 11).
pub fn softmax_rows(a: &Tensor) -> Tensor {
    let value = {
        let av = a.value();
        let (r, c) = av.shape();
        let mut out = Matrix::zeros(r, c);
        for i in 0..r {
            let row = av.row(i);
            let m = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut denom = 0.0;
            for (o, &x) in out.row_mut(i).iter_mut().zip(row.iter()) {
                *o = (x - m).exp();
                denom += *o;
            }
            out.row_mut(i).iter_mut().for_each(|x| *x /= denom);
        }
        out
    };
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(|g, out, parents| {
            if parents[0].participates() {
                let (r, c) = out.shape();
                let mut gi = Matrix::zeros(r, c);
                for i in 0..r {
                    let y = out.row(i);
                    let gr = g.row(i);
                    let dot: f32 = y.iter().zip(gr.iter()).map(|(a, b)| a * b).sum();
                    for (o, (&yv, &gv)) in gi.row_mut(i).iter_mut().zip(y.iter().zip(gr.iter())) {
                        *o = yv * (gv - dot);
                    }
                }
                parents[0].accumulate_grad_owned(gi);
            }
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::check_gradients;

    #[test]
    fn add_sub_mul_div_gradients() {
        check_gradients(&[(2, 3), (2, 3)], |t| add(&t[0], &t[1]), "add");
        check_gradients(&[(2, 3), (2, 3)], |t| sub(&t[0], &t[1]), "sub");
        check_gradients(&[(2, 3), (2, 3)], |t| mul(&t[0], &t[1]), "mul");
        // div: keep the denominator away from zero via offset inside the op.
        check_gradients(&[(2, 3), (2, 3)], |t| div(&t[0], &add_scalar(&exp(&t[1]), 0.5)), "div");
    }

    #[test]
    fn broadcast_gradients() {
        check_gradients(&[(3, 4), (1, 4)], |t| add_row(&t[0], &t[1]), "add_row");
        check_gradients(&[(3, 4), (3, 1)], |t| mul_col(&t[0], &t[1]), "mul_col");
    }

    #[test]
    fn mul_scalar_t_gradient() {
        check_gradients(&[(3, 2), (1, 1)], |t| mul_scalar_t(&t[0], &t[1]), "mul_scalar_t");
    }

    #[test]
    fn unary_gradients() {
        check_gradients(&[(2, 3)], |t| scale(&t[0], 2.5), "scale");
        check_gradients(&[(2, 3)], |t| add_scalar(&t[0], -1.5), "add_scalar");
        check_gradients(&[(2, 3)], |t| neg(&t[0]), "neg");
        check_gradients(&[(2, 3)], |t| one_minus(&t[0]), "one_minus");
        check_gradients(&[(2, 3)], |t| sigmoid(&t[0]), "sigmoid");
        check_gradients(&[(2, 3)], |t| tanh(&t[0]), "tanh");
        check_gradients(&[(2, 3)], |t| exp(&t[0]), "exp");
        check_gradients(&[(2, 3)], |t| leaky_relu(&t[0], 0.2), "leaky_relu");
    }

    #[test]
    fn clamp_gradient_and_values() {
        let a = crate::Tensor::param(Matrix::from_vec(1, 3, vec![-2.0, 0.3, 2.0]));
        let c = clamp(&a, -1.0, 1.0);
        assert_eq!(c.value_clone().data(), &[-1.0, 0.3, 1.0]);
        let loss = crate::ops::sum_all(&c);
        loss.backward();
        assert_eq!(a.grad().unwrap().data(), &[0.0, 1.0, 0.0]);
        check_gradients(&[(2, 3)], |t| clamp(&t[0], -0.5, 0.5), "clamp");
    }

    #[test]
    fn ln_and_pow_gradients() {
        // Keep inputs positive: ln(exp(x)+0.5), (exp(x))^1.7
        check_gradients(&[(2, 3)], |t| ln_eps(&add_scalar(&exp(&t[0]), 0.5), 1e-8), "ln_eps");
        check_gradients(&[(2, 3)], |t| powf(&exp(&t[0]), 1.7), "powf");
    }

    #[test]
    fn softmax_rows_sums_to_one_and_grad_checks() {
        let a = crate::Tensor::param(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let s = softmax_rows(&a);
        let v = s.value_clone();
        for r in 0..2 {
            let sum: f32 = v.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        check_gradients(&[(3, 4)], |t| softmax_rows(&t[0]), "softmax_rows");
    }

    #[test]
    fn relu_kills_negative_gradient() {
        let a = crate::Tensor::param(Matrix::from_vec(1, 2, vec![-1.0, 2.0]));
        let loss = crate::ops::sum_all(&relu(&a));
        loss.backward();
        let g = a.grad().unwrap();
        assert_eq!(g.data(), &[0.0, 1.0]);
    }

    #[test]
    fn sigmoid_saturates_sanely() {
        let a = crate::Tensor::constant(Matrix::from_vec(1, 2, vec![-100.0, 100.0]));
        let s = sigmoid(&a);
        let v = s.value_clone();
        assert!(v.get(0, 0) >= 0.0 && v.get(0, 0) < 1e-6);
        assert!(v.get(0, 1) <= 1.0 && v.get(0, 1) > 1.0 - 1e-6);
    }
}

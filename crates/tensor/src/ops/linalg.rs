//! Dense linear algebra ops.

use crate::autograd::Tensor;

/// Matrix product `a · b` with `a: [m, k]`, `b: [k, n]`.
///
/// Backward: `∂L/∂a = g · bᵀ`, `∂L/∂b = aᵀ · g` (computed with the
/// transpose-free kernels).
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let value = {
        let av = a.value();
        let bv = b.value();
        av.matmul(&bv)
    };
    Tensor::from_op(
        value,
        vec![a.clone(), b.clone()],
        Box::new(|g, _out, parents| {
            if parents[0].participates() {
                let bv = parents[1].value();
                parents[0].accumulate_grad_owned(g.matmul_nt(&bv));
            }
            if parents[1].participates() {
                let av = parents[0].value();
                parents[1].accumulate_grad_owned(av.matmul_tn(g));
            }
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::testing::check_gradients;
    use crate::Tensor;

    #[test]
    fn matmul_gradient_checks() {
        check_gradients(&[(3, 4), (4, 2)], |t| matmul(&t[0], &t[1]), "matmul");
        check_gradients(&[(1, 5), (5, 1)], |t| matmul(&t[0], &t[1]), "matmul_vec");
    }

    #[test]
    fn matmul_known_gradient() {
        // loss = sum(A @ B); dA = ones @ B^T, dB = A^T @ ones
        let a = Tensor::param(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = Tensor::param(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let loss = crate::ops::sum_all(&matmul(&a, &b));
        loss.backward();
        let ga = a.grad().unwrap();
        let gb = b.grad().unwrap();
        assert_eq!(ga.data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(gb.data(), &[4.0, 4.0, 6.0, 6.0]);
    }
}

//! Fused loss ops: binary cross entropy on probabilities (Eq. 17), row-wise
//! cosine similarity for the SCE attribute loss (Eq. 18), KL divergence
//! between diagonal Gaussians (Eq. 15), and MSE (ablation).

use crate::autograd::Tensor;
use crate::matrix::Matrix;
use std::rc::Rc;

const BCE_EPS: f32 = 1e-6;

/// Weighted binary cross-entropy on *probabilities* (not logits):
///
/// `L = (1/norm) Σ w_e · −[ y_e ln p̂_e + (1−y_e) ln(1−p̂_e) ]`
///
/// with `p̂ = clamp(p, ε, 1−ε)`. `targets` and optional `weights` must match
/// the shape of `probs`; `norm` is the caller-chosen normalizer (`|V|` in
/// Eq. 17). The weight hook implements the negative-sampling correction:
/// sampled non-edges carry weight `(N − deg_i) / Q` so the expected loss
/// equals the full-matrix BCE.
pub fn bce_probs(
    probs: &Tensor,
    targets: Rc<Matrix>,
    weights: Option<Rc<Matrix>>,
    norm: f32,
) -> Tensor {
    assert!(norm > 0.0, "bce_probs: normalizer must be positive");
    {
        let pv = probs.value();
        assert_eq!(pv.shape(), targets.shape(), "bce_probs: target shape mismatch");
        if let Some(w) = &weights {
            assert_eq!(pv.shape(), w.shape(), "bce_probs: weight shape mismatch");
        }
    }
    let value = {
        let pv = probs.value();
        let mut acc = 0.0f64;
        for (e, (&p, &y)) in pv.data().iter().zip(targets.data().iter()).enumerate() {
            let w = weights.as_ref().map_or(1.0, |w| w.data()[e]);
            let ph = p.clamp(BCE_EPS, 1.0 - BCE_EPS);
            acc += (w * -(y * ph.ln() + (1.0 - y) * (1.0 - ph).ln())) as f64;
        }
        Matrix::scalar((acc / norm as f64) as f32)
    };
    let t = Rc::clone(&targets);
    let w = weights.clone();
    Tensor::from_op(
        value,
        vec![probs.clone()],
        Box::new(move |g, _out, parents| {
            if parents[0].participates() {
                let pv = parents[0].value();
                let (r, c) = pv.shape();
                let gs = g.item() / norm;
                let mut gp = Matrix::zeros(r, c);
                for (e, (o, (&p, &y))) in
                    gp.data_mut().iter_mut().zip(pv.data().iter().zip(t.data().iter())).enumerate()
                {
                    let we = w.as_ref().map_or(1.0, |w| w.data()[e]);
                    let ph = p.clamp(BCE_EPS, 1.0 - BCE_EPS);
                    *o = gs * we * (ph - y) / (ph * (1.0 - ph));
                }
                parents[0].accumulate_grad_owned(gp);
            }
        }),
    )
}

/// Row-wise cosine similarity between `a` and `b`: `[r, d] × [r, d] → [r, 1]`.
///
/// Norms are floored at `1e-8` to keep the op total. Used to build the
/// scaled cosine error `SCE = mean((1 − cos)^α)` of Eq. 18.
pub fn cosine_rows(a: &Tensor, b: &Tensor) -> Tensor {
    const EPS: f32 = 1e-8;
    assert_eq!(a.shape(), b.shape(), "cosine_rows: shape mismatch");
    let (r, _d) = a.shape();
    let value = {
        let av = a.value();
        let bv = b.value();
        let mut out = Matrix::zeros(r, 1);
        for i in 0..r {
            let (ar, br) = (av.row(i), bv.row(i));
            let dot: f32 = ar.iter().zip(br).map(|(x, y)| x * y).sum();
            let na = ar.iter().map(|x| x * x).sum::<f32>().sqrt().max(EPS);
            let nb = br.iter().map(|x| x * x).sum::<f32>().sqrt().max(EPS);
            out.set(i, 0, dot / (na * nb));
        }
        out
    };
    Tensor::from_op(
        value,
        vec![a.clone(), b.clone()],
        Box::new(|g, out, parents| {
            let av = parents[0].value();
            let bv = parents[1].value();
            let (r, d) = av.shape();
            let need_a = parents[0].participates();
            let need_b = parents[1].participates();
            let mut ga = if need_a { Some(Matrix::zeros(r, d)) } else { None };
            let mut gb = if need_b { Some(Matrix::zeros(r, d)) } else { None };
            for i in 0..r {
                let (ar, br) = (av.row(i), bv.row(i));
                let na = ar.iter().map(|x| x * x).sum::<f32>().sqrt().max(EPS);
                let nb = br.iter().map(|x| x * x).sum::<f32>().sqrt().max(EPS);
                let cos = out.get(i, 0);
                let gi = g.get(i, 0);
                if let Some(ga) = ga.as_mut() {
                    // d cos / d a = b/(na*nb) − cos · a / na²
                    for ((o, &x), &y) in ga.row_mut(i).iter_mut().zip(ar).zip(br) {
                        *o = gi * (y / (na * nb) - cos * x / (na * na));
                    }
                }
                if let Some(gb) = gb.as_mut() {
                    for ((o, &y), &x) in gb.row_mut(i).iter_mut().zip(br).zip(ar) {
                        *o = gi * (x / (na * nb) - cos * y / (nb * nb));
                    }
                }
            }
            if let Some(ga) = ga {
                parents[0].accumulate_grad_owned(ga);
            }
            if let Some(gb) = gb {
                parents[1].accumulate_grad_owned(gb);
            }
        }),
    )
}

/// `KL( N(μ_q, diag e^{lv_q}) ‖ N(μ_p, diag e^{lv_p}) )` summed over all
/// elements, as a `[1,1]` tensor (Eq. 15; log-variance parameterization).
pub fn kl_diag_gaussian(mu_q: &Tensor, lv_q: &Tensor, mu_p: &Tensor, lv_p: &Tensor) -> Tensor {
    let shape = mu_q.shape();
    for (t, name) in [(lv_q, "lv_q"), (mu_p, "mu_p"), (lv_p, "lv_p")] {
        assert_eq!(t.shape(), shape, "kl_diag_gaussian: {name} shape mismatch");
    }
    let value = {
        let mq = mu_q.value();
        let lq = lv_q.value();
        let mp = mu_p.value();
        let lp = lv_p.value();
        let mut acc = 0.0f64;
        for i in 0..mq.len() {
            let (mq, lq, mp, lp) = (mq.data()[i], lq.data()[i], mp.data()[i], lp.data()[i]);
            let d = mq - mp;
            acc += 0.5 * (lp - lq + (lq.exp() + d * d) / lp.exp() - 1.0) as f64;
        }
        Matrix::scalar(acc as f32)
    };
    Tensor::from_op(
        value,
        vec![mu_q.clone(), lv_q.clone(), mu_p.clone(), lv_p.clone()],
        Box::new(|g, _out, parents| {
            let gs = g.item();
            let mq = parents[0].value_clone();
            let lq = parents[1].value_clone();
            let mp = parents[2].value_clone();
            let lp = parents[3].value_clone();
            let (r, c) = mq.shape();
            let n = r * c;
            let mut grads: [Option<Matrix>; 4] = [None, None, None, None];
            for (k, gslot) in grads.iter_mut().enumerate() {
                if parents[k].participates() {
                    *gslot = Some(Matrix::zeros(r, c));
                }
            }
            for i in 0..n {
                let d = mq.data()[i] - mp.data()[i];
                let elp = lp.data()[i].exp();
                let elq = lq.data()[i].exp();
                if let Some(gm) = grads[0].as_mut() {
                    gm.data_mut()[i] = gs * d / elp;
                }
                if let Some(gl) = grads[1].as_mut() {
                    gl.data_mut()[i] = gs * 0.5 * (elq / elp - 1.0);
                }
                if let Some(gm) = grads[2].as_mut() {
                    gm.data_mut()[i] = -gs * d / elp;
                }
                if let Some(gl) = grads[3].as_mut() {
                    gl.data_mut()[i] = gs * 0.5 * (1.0 - (elq + d * d) / elp);
                }
            }
            for (k, gr) in grads.into_iter().enumerate() {
                if let Some(gr) = gr {
                    parents[k].accumulate_grad_owned(gr);
                }
            }
        }),
    )
}

/// Mean squared error against a constant target (ablation alternative to
/// SCE, §IV / Appendix A-E).
pub fn mse_loss(a: &Tensor, target: Rc<Matrix>) -> Tensor {
    {
        let av = a.value();
        assert_eq!(av.shape(), target.shape(), "mse_loss: target shape mismatch");
    }
    let n = target.len().max(1) as f32;
    let value = {
        let av = a.value();
        let mut acc = 0.0f64;
        for (&x, &y) in av.data().iter().zip(target.data().iter()) {
            let d = x - y;
            acc += (d * d) as f64;
        }
        Matrix::scalar((acc / n as f64) as f32)
    };
    let t = Rc::clone(&target);
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            if parents[0].participates() {
                let av = parents[0].value();
                let gs = 2.0 * g.item() / n;
                parents[0].accumulate_grad_owned(av.zip_map(&t, |x, y| gs * (x - y)));
            }
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::testing::check_gradients;
    use crate::Tensor;

    #[test]
    fn bce_probs_matches_manual() {
        let p = Tensor::constant(Matrix::from_vec(2, 1, vec![0.9, 0.2]));
        let y = Rc::new(Matrix::from_vec(2, 1, vec![1.0, 0.0]));
        let loss = bce_probs(&p, y, None, 2.0);
        let expected = -(0.9f32.ln() + 0.8f32.ln()) / 2.0;
        assert!((loss.item() - expected).abs() < 1e-5);
    }

    #[test]
    fn bce_probs_gradient() {
        let y = Rc::new(Matrix::from_vec(3, 2, vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0]));
        let w = Rc::new(Matrix::from_vec(3, 2, vec![1.0, 2.0, 0.5, 1.0, 3.0, 1.0]));
        check_gradients(
            &[(3, 2)],
            move |t| bce_probs(&ops::sigmoid(&t[0]), Rc::clone(&y), Some(Rc::clone(&w)), 3.0),
            "bce_probs",
        );
    }

    #[test]
    fn bce_probs_is_finite_at_extremes() {
        let p = Tensor::param(Matrix::from_vec(2, 1, vec![0.0, 1.0]));
        let y = Rc::new(Matrix::from_vec(2, 1, vec![1.0, 0.0]));
        let loss = bce_probs(&p, y, None, 1.0);
        assert!(loss.item().is_finite());
        loss.backward();
        assert!(!p.grad().unwrap().has_non_finite());
    }

    #[test]
    fn cosine_rows_identical_rows_is_one() {
        let a = Tensor::constant(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.5, 2.0]));
        let c = cosine_rows(&a, &a);
        let v = c.value_clone();
        assert!((v.get(0, 0) - 1.0).abs() < 1e-5);
        assert!((v.get(1, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_rows_orthogonal_is_zero() {
        let a = Tensor::constant(Matrix::from_vec(1, 2, vec![1.0, 0.0]));
        let b = Tensor::constant(Matrix::from_vec(1, 2, vec![0.0, 1.0]));
        assert!(cosine_rows(&a, &b).value_clone().get(0, 0).abs() < 1e-6);
    }

    #[test]
    fn cosine_rows_gradient() {
        check_gradients(
            &[(3, 4), (3, 4)],
            |t| cosine_rows(&ops::add_scalar(&t[0], 2.0), &ops::add_scalar(&t[1], 2.0)),
            "cosine_rows",
        );
    }

    #[test]
    fn kl_zero_when_distributions_match() {
        let mu = Tensor::constant(Matrix::from_vec(2, 2, vec![0.3, -0.5, 1.0, 0.0]));
        let lv = Tensor::constant(Matrix::from_vec(2, 2, vec![0.1, 0.2, -0.3, 0.0]));
        let kl = kl_diag_gaussian(&mu, &lv, &mu, &lv);
        assert!(kl.item().abs() < 1e-6);
    }

    #[test]
    fn kl_is_positive_when_distributions_differ() {
        let mu_q = Tensor::constant(Matrix::scalar(1.0));
        let lv_q = Tensor::constant(Matrix::scalar(0.0));
        let mu_p = Tensor::constant(Matrix::scalar(0.0));
        let lv_p = Tensor::constant(Matrix::scalar(0.0));
        let kl = kl_diag_gaussian(&mu_q, &lv_q, &mu_p, &lv_p);
        assert!((kl.item() - 0.5).abs() < 1e-6); // KL(N(1,1)||N(0,1)) = 0.5
    }

    #[test]
    fn kl_gradient_checks() {
        check_gradients(
            &[(2, 3), (2, 3), (2, 3), (2, 3)],
            |t| kl_diag_gaussian(&t[0], &t[1], &t[2], &t[3]),
            "kl_diag_gaussian",
        );
    }

    #[test]
    fn mse_loss_value_and_gradient() {
        let target = Rc::new(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let a = Tensor::param(Matrix::from_vec(1, 2, vec![2.0, 0.0]));
        let loss = mse_loss(&a, Rc::clone(&target));
        assert!((loss.item() - 2.5).abs() < 1e-6); // (1 + 4) / 2
        let t2 = Rc::clone(&target);
        check_gradients(&[(1, 2)], move |t| mse_loss(&t[0], Rc::clone(&t2)), "mse_loss");
    }
}

//! Differentiable operations on [`Tensor`](crate::Tensor)s.
//!
//! Every op builds the forward value eagerly and registers a backward
//! closure with the tape (unless gradients are disabled). Ops are grouped by
//! family; all are re-exported flat from this module so call sites read
//! `ops::matmul(&a, &b)`.

mod elementwise;
mod linalg;
mod losses;
mod reduce;
mod sparse;
mod structural;

pub use elementwise::{
    add, add_row, add_scalar, clamp, div, exp, leaky_relu, ln_eps, mul, mul_col, mul_scalar_t, neg,
    one_minus, powf, relu, scale, sigmoid, softmax_rows, sub, tanh,
};
pub use linalg::matmul;
pub use losses::{bce_probs, cosine_rows, kl_diag_gaussian, mse_loss};
pub use reduce::{mean_all, sum_all, sum_cols, sum_rows};
pub use sparse::{segment_softmax, spmm_sum, Segments, SparseAdj};
pub use structural::{concat_cols, gather_rows, scatter_add_rows};

//! Reduction ops producing scalars or per-row / per-column aggregates.

use crate::autograd::Tensor;
use crate::matrix::Matrix;

/// Sum of all elements as a `[1,1]` tensor.
pub fn sum_all(a: &Tensor) -> Tensor {
    let value = Matrix::scalar(a.value().sum());
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(|g, _out, parents| {
            if parents[0].participates() {
                let (r, c) = parents[0].shape();
                parents[0].accumulate_grad_owned(Matrix::full(r, c, g.item()));
            }
        }),
    )
}

/// Mean of all elements as a `[1,1]` tensor.
pub fn mean_all(a: &Tensor) -> Tensor {
    let n = {
        let v = a.value();
        v.len().max(1)
    };
    let value = Matrix::scalar(a.value().mean());
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            if parents[0].participates() {
                let (r, c) = parents[0].shape();
                parents[0].accumulate_grad_owned(Matrix::full(r, c, g.item() / n as f32));
            }
        }),
    )
}

/// Per-row sums: `[r, c] -> [r, 1]`.
pub fn sum_cols(a: &Tensor) -> Tensor {
    let value = a.value().sum_cols();
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(|g, _out, parents| {
            if parents[0].participates() {
                let (r, c) = parents[0].shape();
                let mut ga = Matrix::zeros(r, c);
                for i in 0..r {
                    let gv = g.get(i, 0);
                    ga.row_mut(i).iter_mut().for_each(|x| *x = gv);
                }
                parents[0].accumulate_grad_owned(ga);
            }
        }),
    )
}

/// Per-column sums: `[r, c] -> [1, c]`.
pub fn sum_rows(a: &Tensor) -> Tensor {
    let value = a.value().sum_rows();
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(|g, _out, parents| {
            if parents[0].participates() {
                let (r, c) = parents[0].shape();
                let mut ga = Matrix::zeros(r, c);
                for i in 0..r {
                    ga.row_mut(i).copy_from_slice(g.row(0));
                }
                parents[0].accumulate_grad_owned(ga);
            }
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::check_gradients;

    #[test]
    fn reduction_gradients() {
        check_gradients(&[(3, 4)], |t| sum_all(&t[0]), "sum_all");
        check_gradients(&[(3, 4)], |t| mean_all(&t[0]), "mean_all");
        check_gradients(
            &[(3, 4)],
            |t| crate::ops::sum_all(&crate::ops::sigmoid(&sum_cols(&t[0]))),
            "sum_cols",
        );
        check_gradients(
            &[(3, 4)],
            |t| crate::ops::sum_all(&crate::ops::sigmoid(&sum_rows(&t[0]))),
            "sum_rows",
        );
    }

    #[test]
    fn sum_all_value() {
        let a = crate::Tensor::constant(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        assert_eq!(sum_all(&a).item(), 10.0);
        assert_eq!(mean_all(&a).item(), 2.5);
    }
}

//! Sparse graph ops: CSR neighbor aggregation (for GIN-style message
//! passing, Eq. 5 of the paper) and per-segment softmax (for GAT attention,
//! Eq. 12).

use crate::autograd::Tensor;
use crate::matrix::Matrix;
use crate::par;
use std::rc::Rc;

/// Compressed sparse row adjacency: `targets[offsets[i]..offsets[i+1]]` are
/// the neighbors of node `i`. Direction semantics are up to the caller
/// (VRDAG uses separate in-flow and out-flow adjacency).
#[derive(Clone, Debug, PartialEq)]
pub struct SparseAdj {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl SparseAdj {
    /// Build from per-node neighbor lists.
    pub fn from_lists(lists: &[Vec<u32>]) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0usize);
        let total: usize = lists.iter().map(|l| l.len()).sum();
        let mut targets = Vec::with_capacity(total);
        for l in lists {
            targets.extend_from_slice(l);
            offsets.push(targets.len());
        }
        SparseAdj { offsets, targets }
    }

    /// Build from raw CSR arrays.
    ///
    /// # Panics
    /// Panics when `offsets` is empty, not monotone, or does not end at
    /// `targets.len()`.
    pub fn from_raw(offsets: Vec<usize>, targets: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "offsets must start with 0");
        assert_eq!(offsets[0], 0, "offsets must start with 0");
        assert_eq!(*offsets.last().unwrap(), targets.len(), "offsets must end at targets.len()");
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be monotone");
        SparseAdj { offsets, targets }
    }

    /// Number of source nodes (CSR rows).
    pub fn n_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored edges.
    pub fn n_edges(&self) -> usize {
        self.targets.len()
    }

    /// Neighbor list of node `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Degree of node `i` in this adjacency.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }
}

/// Neighbor-sum aggregation: `out[i] = Σ_{j ∈ adj(i)} x[j]`.
///
/// This is the Σ term of the GIN update (Eq. 5). Forward is parallel over
/// destination rows; backward scatters `g[i]` into every neighbor `j`.
pub fn spmm_sum(adj: Rc<SparseAdj>, x: &Tensor) -> Tensor {
    let value = {
        let xv = x.value();
        spmm_sum_matrix(&adj, &xv)
    };
    let adj_b = Rc::clone(&adj);
    Tensor::from_op(
        value,
        vec![x.clone()],
        Box::new(move |g, _out, parents| {
            if parents[0].participates() {
                let (r, c) = parents[0].shape();
                let mut gx = Matrix::zeros(r, c);
                for i in 0..adj_b.n_rows() {
                    let gi = g.row(i);
                    for &j in adj_b.neighbors(i) {
                        let row = gx.row_mut(j as usize);
                        for (o, &v) in row.iter_mut().zip(gi.iter()) {
                            *o += v;
                        }
                    }
                }
                parents[0].accumulate_grad_owned(gx);
            }
        }),
    )
}

/// Plain-matrix neighbor sum (inference-path helper, no tape).
pub fn spmm_sum_matrix(adj: &SparseAdj, x: &Matrix) -> Matrix {
    let c = x.cols();
    let mut out = Matrix::zeros(adj.n_rows(), c);
    {
        let xd = x.data();
        par::par_row_chunks_mut(out.data_mut(), c.max(1), 32, |row0, chunk| {
            for (ri, out_row) in chunk.chunks_exact_mut(c).enumerate() {
                let i = row0 + ri;
                for &j in adj.neighbors(i) {
                    let src = &xd[j as usize * c..(j as usize + 1) * c];
                    for (o, &v) in out_row.iter_mut().zip(src.iter()) {
                        *o += v;
                    }
                }
            }
        });
    }
    out
}

/// Edge-to-segment grouping for per-destination softmax. `edge_ids` lists
/// edge indices grouped contiguously per segment; `offsets` delimits the
/// groups.
#[derive(Clone, Debug)]
pub struct Segments {
    offsets: Vec<usize>,
    edge_ids: Vec<u32>,
}

impl Segments {
    /// Group `m` edges by their segment id (e.g. destination node), given
    /// `seg_of_edge[e] < n_segments`.
    pub fn group(seg_of_edge: &[u32], n_segments: usize) -> Self {
        let mut counts = vec![0usize; n_segments + 1];
        for &s in seg_of_edge {
            counts[s as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut edge_ids = vec![0u32; seg_of_edge.len()];
        for (e, &s) in seg_of_edge.iter().enumerate() {
            edge_ids[cursor[s as usize]] = e as u32;
            cursor[s as usize] += 1;
        }
        Segments { offsets, edge_ids }
    }

    pub fn n_segments(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn n_edges(&self) -> usize {
        self.edge_ids.len()
    }

    /// Edge indices of segment `s`.
    #[inline]
    pub fn edges_of(&self, s: usize) -> &[u32] {
        &self.edge_ids[self.offsets[s]..self.offsets[s + 1]]
    }
}

/// Softmax over edge scores within each segment: for segment `S` and edge
/// `e ∈ S`, `α_e = exp(x_e) / Σ_{e' ∈ S} exp(x_{e'})` (max-subtracted).
///
/// Input and output are `[m, 1]` column vectors. Edges whose segment is
/// empty cannot exist by construction.
pub fn segment_softmax(scores: &Tensor, segments: Rc<Segments>) -> Tensor {
    let (m, c) = scores.shape();
    assert_eq!(c, 1, "segment_softmax expects an [m,1] score column");
    assert_eq!(m, segments.n_edges(), "one score per edge");
    let value = {
        let sv = scores.value();
        let mut out = Matrix::zeros(m, 1);
        for s in 0..segments.n_segments() {
            let edges = segments.edges_of(s);
            if edges.is_empty() {
                continue;
            }
            let mx = edges.iter().fold(f32::NEG_INFINITY, |mx, &e| mx.max(sv.get(e as usize, 0)));
            let mut denom = 0.0;
            for &e in edges {
                let v = (sv.get(e as usize, 0) - mx).exp();
                out.set(e as usize, 0, v);
                denom += v;
            }
            for &e in edges {
                let v = out.get(e as usize, 0) / denom;
                out.set(e as usize, 0, v);
            }
        }
        out
    };
    let seg_b = Rc::clone(&segments);
    Tensor::from_op(
        value,
        vec![scores.clone()],
        Box::new(move |g, out, parents| {
            if parents[0].participates() {
                let mut gi = Matrix::zeros(out.rows(), 1);
                for s in 0..seg_b.n_segments() {
                    let edges = seg_b.edges_of(s);
                    if edges.is_empty() {
                        continue;
                    }
                    let dot: f32 =
                        edges.iter().map(|&e| g.get(e as usize, 0) * out.get(e as usize, 0)).sum();
                    for &e in edges {
                        let y = out.get(e as usize, 0);
                        gi.set(e as usize, 0, y * (g.get(e as usize, 0) - dot));
                    }
                }
                parents[0].accumulate_grad_owned(gi);
            }
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::check_gradients;
    use crate::Tensor;

    fn toy_adj() -> Rc<SparseAdj> {
        // 0 -> {1,2}, 1 -> {}, 2 -> {0}
        Rc::new(SparseAdj::from_lists(&[vec![1, 2], vec![], vec![0]]))
    }

    #[test]
    fn sparse_adj_accessors() {
        let adj = toy_adj();
        assert_eq!(adj.n_rows(), 3);
        assert_eq!(adj.n_edges(), 3);
        assert_eq!(adj.neighbors(0), &[1, 2]);
        assert_eq!(adj.degree(1), 0);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn from_raw_rejects_non_monotone() {
        let _ = SparseAdj::from_raw(vec![0, 2, 1], vec![0]);
    }

    #[test]
    fn spmm_sum_values() {
        let adj = toy_adj();
        let x = Tensor::constant(Matrix::from_fn(3, 2, |r, c| (r * 10 + c) as f32));
        let out = spmm_sum(Rc::clone(&adj), &x);
        let v = out.value_clone();
        assert_eq!(v.row(0), &[30.0, 32.0]); // rows 1 + 2
        assert_eq!(v.row(1), &[0.0, 0.0]);
        assert_eq!(v.row(2), &[0.0, 1.0]); // row 0
    }

    #[test]
    fn spmm_sum_gradient() {
        let adj = toy_adj();
        check_gradients(&[(3, 2)], move |t| spmm_sum(Rc::clone(&adj), &t[0]), "spmm_sum");
    }

    #[test]
    fn segments_group_correctly() {
        let segs = Segments::group(&[2, 0, 2, 1], 3);
        assert_eq!(segs.n_segments(), 3);
        assert_eq!(segs.edges_of(0), &[1]);
        assert_eq!(segs.edges_of(1), &[3]);
        assert_eq!(segs.edges_of(2), &[0, 2]);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let segs = Rc::new(Segments::group(&[0, 0, 1, 1, 1], 2));
        let s = Tensor::constant(Matrix::from_vec(5, 1, vec![1.0, 2.0, -1.0, 0.0, 1.0]));
        let a = segment_softmax(&s, Rc::clone(&segs));
        let v = a.value_clone();
        let s0: f32 = v.get(0, 0) + v.get(1, 0);
        let s1: f32 = v.get(2, 0) + v.get(3, 0) + v.get(4, 0);
        assert!((s0 - 1.0).abs() < 1e-5);
        assert!((s1 - 1.0).abs() < 1e-5);
        assert!(v.get(1, 0) > v.get(0, 0));
    }

    #[test]
    fn segment_softmax_gradient() {
        let segs = Rc::new(Segments::group(&[0, 1, 0, 1, 0], 2));
        check_gradients(
            &[(5, 1)],
            move |t| segment_softmax(&t[0], Rc::clone(&segs)),
            "segment_softmax",
        );
    }

    #[test]
    fn spmm_matrix_matches_tensor_path() {
        let adj = toy_adj();
        let x = Matrix::from_fn(3, 4, |r, c| (r + c) as f32);
        let dense = spmm_sum_matrix(&adj, &x);
        let t = spmm_sum(Rc::clone(&adj), &Tensor::constant(x));
        assert_eq!(dense, t.value_clone());
    }
}

//! Structural ops: concatenation, gather, scatter.

use crate::autograd::Tensor;
use crate::matrix::Matrix;
use std::rc::Rc;

/// Concatenate tensors horizontally (matching row counts).
pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat_cols needs at least one input");
    let value = {
        let borrowed: Vec<_> = parts.iter().map(|p| p.value_clone()).collect();
        let refs: Vec<&Matrix> = borrowed.iter().collect();
        Matrix::concat_cols(&refs)
    };
    let widths: Vec<usize> = parts.iter().map(|p| p.shape().1).collect();
    Tensor::from_op(
        value,
        parts.iter().map(|p| (*p).clone()).collect(),
        Box::new(move |g, _out, parents| {
            let mut off = 0;
            for (p, &w) in parents.iter().zip(widths.iter()) {
                if p.participates() {
                    p.accumulate_grad_owned(g.slice_cols(off, off + w));
                }
                off += w;
            }
        }),
    )
}

/// Select rows of `a` by index (repetition allowed): `out[e] = a[idx[e]]`.
///
/// Backward scatters gradient rows back: `ga[idx[e]] += g[e]`.
pub fn gather_rows(a: &Tensor, idx: Rc<Vec<u32>>) -> Tensor {
    let value = a.value().gather_rows(&idx);
    let idx_b = Rc::clone(&idx);
    Tensor::from_op(
        value,
        vec![a.clone()],
        Box::new(move |g, _out, parents| {
            if parents[0].participates() {
                let (r, c) = parents[0].shape();
                let mut ga = Matrix::zeros(r, c);
                for (e, &i) in idx_b.iter().enumerate() {
                    let row = ga.row_mut(i as usize);
                    for (o, &v) in row.iter_mut().zip(g.row(e).iter()) {
                        *o += v;
                    }
                }
                parents[0].accumulate_grad_owned(ga);
            }
        }),
    )
}

/// Scatter-add rows of `src` into an `[n_out, c]` output: `out[idx[e]] += src[e]`.
///
/// Backward gathers: `g_src[e] = g[idx[e]]`.
pub fn scatter_add_rows(src: &Tensor, idx: Rc<Vec<u32>>, n_out: usize) -> Tensor {
    let (m, c) = src.shape();
    assert_eq!(idx.len(), m, "scatter_add_rows: one index per source row");
    let value = {
        let sv = src.value();
        let mut out = Matrix::zeros(n_out, c);
        for (e, &i) in idx.iter().enumerate() {
            let row = out.row_mut(i as usize);
            for (o, &v) in row.iter_mut().zip(sv.row(e).iter()) {
                *o += v;
            }
        }
        out
    };
    let idx_b = Rc::clone(&idx);
    Tensor::from_op(
        value,
        vec![src.clone()],
        Box::new(move |g, _out, parents| {
            if parents[0].participates() {
                let idx_usize: Vec<u32> = idx_b.iter().copied().collect();
                parents[0].accumulate_grad_owned(g.gather_rows(&idx_usize));
            }
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::check_gradients;

    #[test]
    fn concat_cols_gradient() {
        check_gradients(
            &[(3, 2), (3, 4), (3, 1)],
            |t| concat_cols(&[&t[0], &t[1], &t[2]]),
            "concat_cols",
        );
    }

    #[test]
    fn gather_rows_gradient() {
        let idx = Rc::new(vec![0u32, 2, 2, 1]);
        check_gradients(&[(3, 4)], move |t| gather_rows(&t[0], Rc::clone(&idx)), "gather_rows");
    }

    #[test]
    fn scatter_add_rows_gradient() {
        let idx = Rc::new(vec![1u32, 0, 1, 3]);
        check_gradients(
            &[(4, 3)],
            move |t| scatter_add_rows(&t[0], Rc::clone(&idx), 5),
            "scatter_add_rows",
        );
    }

    #[test]
    fn gather_then_scatter_round_trip_values() {
        let a = crate::Tensor::constant(Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32));
        let idx = Rc::new(vec![3u32, 1]);
        let g = gather_rows(&a, Rc::clone(&idx));
        assert_eq!(g.value_clone().row(0), &[6.0, 7.0]);
        let s = scatter_add_rows(&g, Rc::new(vec![0, 0]), 2);
        // rows 3 and 1 of a summed into row 0
        assert_eq!(s.value_clone().row(0), &[8.0, 10.0]);
        assert_eq!(s.value_clone().row(1), &[0.0, 0.0]);
    }
}

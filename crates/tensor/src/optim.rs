//! Optimizers and gradient utilities (Adam is the paper's optimizer of
//! choice for deep generators; SGD is kept for tests and ablations).

// Index-based loops below walk several parallel arrays in hot paths;
// iterator zips would obscure them. (clippy::needless_range_loop)
#![allow(clippy::needless_range_loop)]

use crate::autograd::Tensor;
use crate::matrix::Matrix;
use std::collections::HashMap;

/// Zero the gradient buffers of all parameters.
pub fn zero_grad(params: &[Tensor]) {
    for p in params {
        p.zero_grad();
    }
}

/// Clip gradients by global L2 norm; returns the pre-clip norm.
pub fn clip_global_norm(params: &[Tensor], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sq = 0.0f64;
    for p in params {
        if let Some(g) = p.grad() {
            sq += g.data().iter().map(|x| (*x as f64) * (*x as f64)).sum::<f64>();
        }
    }
    let norm = (sq as f32).sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if let Some(mut g) = p.grad() {
                g.scale_assign(scale);
                p.zero_grad();
                p.accumulate_grad_owned(g);
            }
        }
    }
    norm
}

/// Adam optimizer (Kingma & Ba) with optional decoupled weight decay.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    state: HashMap<u64, (Matrix, Matrix)>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            state: HashMap::new(),
        }
    }

    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    pub fn lr(&self) -> f32 {
        self.lr
    }

    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one update step using the accumulated gradients; parameters
    /// without a gradient are skipped. Gradients are consumed (zeroed).
    pub fn step(&mut self, params: &[Tensor]) {
        self.t += 1;
        let b1c = 1.0 - self.beta1.powi(self.t as i32);
        let b2c = 1.0 - self.beta2.powi(self.t as i32);
        for p in params {
            let Some(g) = p.grad() else { continue };
            let (rows, cols) = p.shape();
            let (m, v) = self
                .state
                .entry(p.id())
                .or_insert_with(|| (Matrix::zeros(rows, cols), Matrix::zeros(rows, cols)));
            let (b1, b2, eps, lr, wd) =
                (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
            p.update_value(|value| {
                for i in 0..value.len() {
                    let gi = g.data()[i];
                    let mi = b1 * m.data()[i] + (1.0 - b1) * gi;
                    let vi = b2 * v.data()[i] + (1.0 - b2) * gi * gi;
                    m.data_mut()[i] = mi;
                    v.data_mut()[i] = vi;
                    let mhat = mi / b1c;
                    let vhat = vi / b2c;
                    let mut x = value.data()[i];
                    if wd > 0.0 {
                        x -= lr * wd * x;
                    }
                    value.data_mut()[i] = x - lr * mhat / (vhat.sqrt() + eps);
                }
            });
            p.zero_grad();
        }
    }
}

/// Plain stochastic gradient descent (kept for tests/ablations).
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Apply one update; gradients are consumed.
    pub fn step(&self, params: &[Tensor]) {
        for p in params {
            let Some(g) = p.grad() else { continue };
            p.update_value(|value| value.scaled_add_assign(-self.lr, &g));
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use std::rc::Rc;

    /// Minimize ||x - target||^2 and check convergence.
    fn converges<F: FnMut(&[Tensor])>(mut stepper: F) -> f32 {
        let x = Tensor::param(Matrix::from_vec(1, 2, vec![5.0, -3.0]));
        let target = Rc::new(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let params = [x.clone()];
        for _ in 0..400 {
            zero_grad(&params);
            let loss = ops::mse_loss(&x, Rc::clone(&target));
            loss.backward();
            stepper(&params);
        }
        let v = x.value_clone();
        (v.get(0, 0) - 1.0).abs() + (v.get(0, 1) - 2.0).abs()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let sgd = Sgd::new(0.1);
        let err = converges(|p| sgd.step(p));
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.05);
        let err = converges(|p| adam.step(p));
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn adam_skips_parameters_without_grad() {
        let x = Tensor::param(Matrix::scalar(1.0));
        let mut adam = Adam::new(0.1);
        adam.step(std::slice::from_ref(&x));
        assert_eq!(x.item(), 1.0);
    }

    #[test]
    fn clip_global_norm_scales_down() {
        let x = Tensor::param(Matrix::scalar(0.0));
        x.accumulate_grad_owned(Matrix::from_vec(1, 1, vec![3.0]));
        let y = Tensor::param(Matrix::scalar(0.0));
        y.accumulate_grad_owned(Matrix::from_vec(1, 1, vec![4.0]));
        let norm = clip_global_norm(&[x.clone(), y.clone()], 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let gx = x.grad().unwrap().item();
        let gy = y.grad().unwrap().item();
        assert!((gx - 0.6).abs() < 1e-6);
        assert!((gy - 0.8).abs() < 1e-6);
    }

    #[test]
    fn clip_global_norm_leaves_small_grads_alone() {
        let x = Tensor::param(Matrix::scalar(0.0));
        x.accumulate_grad_owned(Matrix::from_vec(1, 1, vec![0.3]));
        clip_global_norm(std::slice::from_ref(&x), 1.0);
        assert!((x.grad().unwrap().item() - 0.3).abs() < 1e-7);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let x = Tensor::param(Matrix::scalar(10.0));
        let mut adam = Adam::new(0.0).with_weight_decay(0.1);
        // lr = 0 means pure decay would do nothing (decay is scaled by lr);
        // use a tiny lr and zero gradient direction instead.
        adam.set_lr(0.01);
        x.accumulate_grad_owned(Matrix::scalar(0.0));
        adam.step(std::slice::from_ref(&x));
        assert!(x.item() < 10.0);
    }
}

//! Scoped-thread parallel helpers used by the hot kernels.
//!
//! The VRDAG paper relies on GPU batching to parallelize row-wise adjacency
//! decoding; on CPU we parallelize with `std::thread::scope` over contiguous
//! index ranges. Everything here is allocation-light: workers receive a
//! `Range<usize>` and operate on shared slices.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

/// Hard cap on worker threads — beyond this the kernels in this crate are
/// memory-bound and extra threads only add contention.
pub const MAX_THREADS: usize = 16;

/// Process-wide default thread count, resolved **once** from the environment.
///
/// `VRDAG_THREADS` is read a single time (first use) and latched in a
/// [`OnceLock`]; a mid-run change to the environment can therefore never
/// desync two halves of one job — every parallel section in the process
/// agrees on the same default for its whole lifetime.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("VRDAG_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
            .min(MAX_THREADS)
    })
}

thread_local! {
    /// Per-thread override installed by [`with_threads`]; 0 = no override.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads to use for parallel sections.
///
/// Controlled by the `VRDAG_THREADS` environment variable (read once per
/// process and latched, so a mid-run env change can never desync two halves
/// of one job); defaults to the machine's available
/// parallelism, capped at [`MAX_THREADS`]. A scoped [`with_threads`] override
/// on the calling thread takes precedence — this is how the serving layer
/// clamps intra-job parallelism per worker without touching global state.
pub fn num_threads() -> usize {
    let o = OVERRIDE.with(Cell::get);
    if o != 0 {
        o
    } else {
        default_threads()
    }
}

/// Run `f` with every parallel section *on this thread* using `n` worker
/// threads, restoring the previous setting afterwards (also on panic).
///
/// The override is thread-local and scoped, so concurrent jobs on different
/// worker threads can run with different clamps; the kernels' chunk-invariant
/// structure (per-index work, per-row serial float order, per-row RNG streams)
/// guarantees the thread count never changes output bytes.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Reset(usize);
    impl Drop for Reset {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _reset = Reset(OVERRIDE.with(|c| c.replace(n.clamp(1, MAX_THREADS))));
    f()
}

/// Split `0..n` into at most `num_threads()` contiguous ranges and run `f` on
/// each range in parallel. Falls back to a single inline call when the work
/// is too small to amortize thread spawning.
///
/// `min_per_thread` is the smallest number of items worth giving a thread.
pub fn par_ranges<F>(n: usize, min_per_thread: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let threads = num_threads().min(n / min_per_thread.max(1)).max(1);
    if threads <= 1 {
        f(0..n);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let f = &f;
            s.spawn(move || f(lo..hi));
        }
    });
}

/// Parallel map over `0..n` collecting results in order.
pub fn par_map_collect<T, F>(n: usize, min_per_thread: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    {
        let slots = SendPtr(out.as_mut_ptr());
        par_ranges(n, min_per_thread, |range| {
            let slots = &slots;
            for i in range {
                // SAFETY: ranges are disjoint, so each slot is written by
                // exactly one thread; the Vec outlives the scope.
                unsafe { *slots.0.add(i) = f(i) };
            }
        });
    }
    out
}

/// Pointer wrapper asserting cross-thread transfer is safe for our
/// disjoint-range writes.
struct SendPtr<T>(*mut T);
unsafe impl<T> Sync for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}

/// Run `f` on disjoint mutable row chunks of `data` (row-major with `cols`
/// columns). The closure receives the starting row index and the chunk.
pub fn par_row_chunks_mut<F>(data: &mut [f32], cols: usize, min_rows: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(cols > 0, "cols must be positive");
    let rows = data.len() / cols;
    if rows == 0 {
        return;
    }
    let threads = num_threads().min(rows / min_rows.max(1)).max(1);
    if threads <= 1 {
        f(0, data);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = data;
        let mut row0 = 0usize;
        while !rest.is_empty() {
            let take = (chunk_rows * cols).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let f = &f;
            let start = row0;
            s.spawn(move || f(start, head));
            row0 += take / cols;
            rest = tail;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn mid_run_env_change_cannot_desync_one_job() {
        // First half of the "job" resolves the thread count…
        let first = num_threads();
        // …then the environment changes mid-run (e.g. a test harness or a
        // config reload touches VRDAG_THREADS)…
        std::env::set_var("VRDAG_THREADS", format!("{}", (first % MAX_THREADS) + 1));
        // …and the second half must still agree, because the default is
        // latched once per process.
        let second = num_threads();
        std::env::remove_var("VRDAG_THREADS");
        assert_eq!(first, second, "VRDAG_THREADS change mid-run desynced parallel sections");
        assert_eq!(num_threads(), first);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let base = num_threads();
        let inside = with_threads(3, || {
            // Nested overrides stack and restore.
            let outer = num_threads();
            let inner = with_threads(5, num_threads);
            assert_eq!(inner, 5);
            assert_eq!(num_threads(), 3);
            outer
        });
        assert_eq!(inside, 3);
        assert_eq!(num_threads(), base, "override leaked past its scope");
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let base = num_threads();
        let result = std::panic::catch_unwind(|| with_threads(2, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(num_threads(), base, "override leaked past a panic");
    }

    #[test]
    fn with_threads_clamps_to_valid_range() {
        assert_eq!(with_threads(0, num_threads), 1);
        assert_eq!(with_threads(usize::MAX, num_threads), MAX_THREADS);
    }

    #[test]
    fn with_threads_is_thread_local() {
        with_threads(7, || {
            assert_eq!(num_threads(), 7);
            // A freshly spawned thread does not inherit the override.
            let other = std::thread::spawn(num_threads).join().unwrap();
            assert_eq!(other, default_threads());
        });
    }

    #[test]
    fn par_ranges_covers_all_indices() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        par_ranges(1000, 1, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_ranges_handles_empty() {
        par_ranges(0, 1, |_| panic!("must not be called"));
    }

    #[test]
    fn par_map_collect_preserves_order() {
        let v = par_map_collect(257, 1, |i| i * 3);
        assert_eq!(v.len(), 257);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 3);
        }
    }

    #[test]
    fn par_row_chunks_mut_writes_disjoint_rows() {
        let mut data = vec![0.0f32; 64 * 7];
        par_row_chunks_mut(&mut data, 7, 1, |row0, chunk| {
            for (r, row) in chunk.chunks_exact_mut(7).enumerate() {
                for x in row.iter_mut() {
                    *x = (row0 + r) as f32;
                }
            }
        });
        for (r, row) in data.chunks_exact(7).enumerate() {
            assert!(row.iter().all(|&x| x == r as f32));
        }
    }
}

//! Scoped-thread parallel helpers used by the hot kernels.
//!
//! The VRDAG paper relies on GPU batching to parallelize row-wise adjacency
//! decoding; on CPU we parallelize with `std::thread::scope` over contiguous
//! index ranges. Everything here is allocation-light: workers receive a
//! `Range<usize>` and operate on shared slices.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for parallel sections.
///
/// Controlled by the `VRDAG_THREADS` environment variable; defaults to the
/// machine's available parallelism (capped at 16 — beyond that the kernels in
/// this crate are memory-bound).
pub fn num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("VRDAG_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
        .min(16);
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Split `0..n` into at most `num_threads()` contiguous ranges and run `f` on
/// each range in parallel. Falls back to a single inline call when the work
/// is too small to amortize thread spawning.
///
/// `min_per_thread` is the smallest number of items worth giving a thread.
pub fn par_ranges<F>(n: usize, min_per_thread: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let threads = num_threads().min(n / min_per_thread.max(1)).max(1);
    if threads <= 1 {
        f(0..n);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let f = &f;
            s.spawn(move || f(lo..hi));
        }
    });
}

/// Parallel map over `0..n` collecting results in order.
pub fn par_map_collect<T, F>(n: usize, min_per_thread: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    {
        let slots = SendPtr(out.as_mut_ptr());
        par_ranges(n, min_per_thread, |range| {
            let slots = &slots;
            for i in range {
                // SAFETY: ranges are disjoint, so each slot is written by
                // exactly one thread; the Vec outlives the scope.
                unsafe { *slots.0.add(i) = f(i) };
            }
        });
    }
    out
}

/// Pointer wrapper asserting cross-thread transfer is safe for our
/// disjoint-range writes.
struct SendPtr<T>(*mut T);
unsafe impl<T> Sync for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}

/// Run `f` on disjoint mutable row chunks of `data` (row-major with `cols`
/// columns). The closure receives the starting row index and the chunk.
pub fn par_row_chunks_mut<F>(data: &mut [f32], cols: usize, min_rows: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(cols > 0, "cols must be positive");
    let rows = data.len() / cols;
    if rows == 0 {
        return;
    }
    let threads = num_threads().min(rows / min_rows.max(1)).max(1);
    if threads <= 1 {
        f(0, data);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = data;
        let mut row0 = 0usize;
        while !rest.is_empty() {
            let take = (chunk_rows * cols).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let f = &f;
            let start = row0;
            s.spawn(move || f(start, head));
            row0 += take / cols;
            rest = tail;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn par_ranges_covers_all_indices() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        par_ranges(1000, 1, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_ranges_handles_empty() {
        par_ranges(0, 1, |_| panic!("must not be called"));
    }

    #[test]
    fn par_map_collect_preserves_order() {
        let v = par_map_collect(257, 1, |i| i * 3);
        assert_eq!(v.len(), 257);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 3);
        }
    }

    #[test]
    fn par_row_chunks_mut_writes_disjoint_rows() {
        let mut data = vec![0.0f32; 64 * 7];
        par_row_chunks_mut(&mut data, 7, 1, |row0, chunk| {
            for (r, row) in chunk.chunks_exact_mut(7).enumerate() {
                for x in row.iter_mut() {
                    *x = (row0 + r) as f32;
                }
            }
        });
        for (r, row) in data.chunks_exact(7).enumerate() {
            assert!(row.iter().all(|&x| x == r as f32));
        }
    }
}

//! Test support: numerical gradient checking against finite differences.
//!
//! Exposed as a normal module (not `#[cfg(test)]`) so downstream crates can
//! gradient-check their composite modules (encoder, decoder, GAT) too.

use crate::autograd::Tensor;
use crate::matrix::Matrix;
use crate::ops;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Verify analytic gradients of `f` against central finite differences.
///
/// `shapes` gives the input tensor shapes; inputs are filled with
/// reproducible uniform values in `[-0.8, 0.8]`. The output of `f` is
/// reduced with `sum_all` (if not already scalar) to obtain a scalar loss.
///
/// # Panics
/// Panics (with a diagnostic including `name`) when any gradient entry
/// deviates by more than `2e-2` relative (with a `2e-3` absolute floor).
pub fn check_gradients<F>(shapes: &[(usize, usize)], f: F, name: &str)
where
    F: Fn(&[Tensor]) -> Tensor,
{
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let inputs: Vec<Tensor> = shapes
        .iter()
        .map(|&(r, c)| Tensor::param(Matrix::rand_uniform(r, c, -0.8, 0.8, &mut rng)))
        .collect();

    let scalarize = |t: &Tensor| -> Tensor {
        if t.shape() == (1, 1) {
            t.clone()
        } else {
            ops::sum_all(t)
        }
    };

    // Analytic gradients.
    for t in &inputs {
        t.zero_grad();
    }
    let loss = scalarize(&f(&inputs));
    loss.backward();
    let analytic: Vec<Matrix> = inputs
        .iter()
        .map(|t| {
            let (r, c) = t.shape();
            t.grad().unwrap_or_else(|| Matrix::zeros(r, c))
        })
        .collect();

    // Numeric gradients via central differences on each input element.
    const H: f32 = 5e-3;
    for (k, t) in inputs.iter().enumerate() {
        let (r, c) = t.shape();
        for i in 0..r * c {
            let orig = t.value().data()[i];
            t.update_value(|m| m.data_mut()[i] = orig + H);
            let up = crate::autograd::no_grad(|| scalarize(&f(&inputs)).item()) as f64;
            t.update_value(|m| m.data_mut()[i] = orig - H);
            let down = crate::autograd::no_grad(|| scalarize(&f(&inputs)).item()) as f64;
            t.update_value(|m| m.data_mut()[i] = orig);
            let numeric = ((up - down) / (2.0 * H as f64)) as f32;
            let got = analytic[k].data()[i];
            let denom = numeric.abs().max(got.abs()).max(1.0);
            let rel = (numeric - got).abs() / denom;
            assert!(
                rel < 2e-2 || (numeric - got).abs() < 2e-3,
                "{name}: gradient mismatch at input {k} elem {i}: analytic {got} vs numeric {numeric}"
            );
        }
    }
}

/// Assert two matrices are element-wise close.
pub fn assert_matrix_close(a: &Matrix, b: &Matrix, tol: f32, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        assert!((x - y).abs() <= tol, "{ctx}: elem {i}: {x} vs {y}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_gradients_accepts_correct_op() {
        check_gradients(&[(2, 2)], |t| ops::tanh(&t[0]), "tanh_ok");
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn check_gradients_rejects_wrong_gradient() {
        // An op with a deliberately wrong backward: forward x*3, backward 1.
        let bad = |t: &[Tensor]| {
            Tensor::from_op(
                t[0].value().map(|x| 3.0 * x),
                vec![t[0].clone()],
                Box::new(|g, _out, parents| {
                    parents[0].accumulate_grad(g); // should be 3*g
                }),
            )
        };
        check_gradients(&[(2, 2)], bad, "bad_op");
    }
}

//! Property-based tests of the autograd engine: algebraic identities that
//! must hold for arbitrary shapes and values.

use proptest::prelude::*;
use vrdag_tensor::{ops, Matrix, Tensor};

fn matrix_strategy(r: usize, c: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, r * c).prop_map(move |data| Matrix::from_vec(r, c, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_is_commutative(a in matrix_strategy(3, 4), b in matrix_strategy(3, 4)) {
        let ta = Tensor::constant(a);
        let tb = Tensor::constant(b);
        let ab = ops::add(&ta, &tb).value_clone();
        let ba = ops::add(&tb, &ta).value_clone();
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(3, 5),
        b in matrix_strategy(5, 2),
        c in matrix_strategy(5, 2),
    ) {
        // A(B + C) == AB + AC (within f32 tolerance).
        let ta = Tensor::constant(a);
        let tb = Tensor::constant(b);
        let tc = Tensor::constant(c);
        let lhs = ops::matmul(&ta, &ops::add(&tb, &tc)).value_clone();
        let rhs = ops::add(&ops::matmul(&ta, &tb), &ops::matmul(&ta, &tc)).value_clone();
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn gradient_of_sum_is_ones(a in matrix_strategy(4, 3)) {
        let t = Tensor::param(a);
        ops::sum_all(&t).backward();
        let g = t.grad().unwrap();
        prop_assert!(g.data().iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    #[test]
    fn backward_is_linear_in_seed(a in matrix_strategy(3, 3)) {
        // d(k·f)/dx == k·df/dx, checked via two backward passes.
        let t1 = Tensor::param(a.clone());
        ops::sum_all(&ops::tanh(&t1)).backward();
        let g1 = t1.grad().unwrap();

        let t2 = Tensor::param(a);
        ops::scale(&ops::sum_all(&ops::tanh(&t2)), 2.5).backward();
        let g2 = t2.grad().unwrap();
        for (x, y) in g1.data().iter().zip(g2.data().iter()) {
            prop_assert!((2.5 * x - y).abs() < 1e-4, "{} vs {}", x, y);
        }
    }

    #[test]
    fn softmax_rows_is_a_distribution(a in matrix_strategy(5, 6)) {
        let s = ops::softmax_rows(&Tensor::constant(a)).value_clone();
        for r in 0..5 {
            let row_sum: f32 = s.row(r).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn sigmoid_output_bounded(a in matrix_strategy(4, 4)) {
        let s = ops::sigmoid(&Tensor::constant(a)).value_clone();
        prop_assert!(s.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn transpose_is_involutive(a in matrix_strategy(4, 7)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_transpose_kernels_agree(
        a in matrix_strategy(4, 6),
        b in matrix_strategy(5, 6),
    ) {
        // a · bᵀ via matmul_nt == a · transpose(b) via matmul.
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn concat_slice_round_trip(
        a in matrix_strategy(3, 2),
        b in matrix_strategy(3, 5),
    ) {
        let cat = Matrix::concat_cols(&[&a, &b]);
        prop_assert_eq!(cat.slice_cols(0, 2), a);
        prop_assert_eq!(cat.slice_cols(2, 7), b);
    }

    #[test]
    fn kl_divergence_is_non_negative(
        mu_q in matrix_strategy(2, 3),
        lv_q in matrix_strategy(2, 3),
        mu_p in matrix_strategy(2, 3),
        lv_p in matrix_strategy(2, 3),
    ) {
        let kl = ops::kl_diag_gaussian(
            &Tensor::constant(mu_q),
            &Tensor::constant(lv_q),
            &Tensor::constant(mu_p),
            &Tensor::constant(lv_p),
        );
        prop_assert!(kl.item() >= -1e-4, "negative KL: {}", kl.item());
    }

    #[test]
    fn cosine_rows_bounded(
        a in matrix_strategy(4, 5),
        b in matrix_strategy(4, 5),
    ) {
        let c = ops::cosine_rows(&Tensor::constant(a), &Tensor::constant(b)).value_clone();
        prop_assert!(c.data().iter().all(|&x| (-1.0 - 1e-5..=1.0 + 1e-5).contains(&x)));
    }
}

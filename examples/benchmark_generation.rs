//! The benchmarking scenario from the paper's introduction: a graph
//! processing system needs realistic test data at several sizes. This
//! example fits VRDAG once on an observed graph, then generates synthetic
//! workloads at multiple horizon lengths, reporting throughput — and
//! contrasts the one-shot decoder with a walk-based baseline (the Fig. 9
//! efficiency story at example scale).
//!
//! ```sh
//! cargo run --release --example benchmark_generation
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use vrdag_suite::baselines::TiggerLike;
use vrdag_suite::prelude::*;

fn main() {
    let spec = datasets::wiki().scaled(0.04);
    let observed = datasets::generate(&spec, 7);
    println!(
        "observed workload: N={} M={} T={}",
        observed.n_nodes(),
        observed.temporal_edge_count(),
        observed.t_len()
    );

    // Fit both generators once.
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = VrdagConfig { epochs: 8, seed: 1, ..VrdagConfig::default() };
    let mut vrdag = Vrdag::new(cfg);
    let t0 = Instant::now();
    vrdag.fit(&observed, &mut rng).expect("vrdag fit");
    println!("VRDAG trained in {:.2}s", t0.elapsed().as_secs_f64());

    let mut tigger: Box<dyn DynamicGraphGenerator> = Box::new(TiggerLike::with_defaults());
    let t1 = Instant::now();
    tigger.fit(&observed, &mut rng).expect("tigger fit");
    println!("TIGGER trained in {:.2}s", t1.elapsed().as_secs_f64());

    // Generate benchmark workloads at increasing horizons.
    println!(
        "\n{:>6} {:>14} {:>14} {:>16} {:>16}",
        "T", "VRDAG (s)", "TIGGER (s)", "VRDAG edges/s", "TIGGER edges/s"
    );
    for t_len in [5usize, 10, 20, 40] {
        let t = Instant::now();
        let g_v = vrdag.generate(t_len, &mut rng).expect("vrdag generate");
        let v_secs = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let g_t = tigger.generate(t_len, &mut rng).expect("tigger generate");
        let t_secs = t.elapsed().as_secs_f64();
        println!(
            "{:>6} {:>14.3} {:>14.3} {:>16.0} {:>16.0}",
            t_len,
            v_secs,
            t_secs,
            g_v.temporal_edge_count() as f64 / v_secs.max(1e-9),
            g_t.temporal_edge_count() as f64 / t_secs.max(1e-9),
        );
    }

    println!(
        "\nNote: VRDAG decodes each snapshot in one shot (O(N²·(h+K)) with the \
         difference factorization), while walk-based generators must sample and \
         merge a number of temporal walks proportional to the edge budget — the \
         asymmetry behind the paper's Fig. 9 and Tables III/IV."
    );
}

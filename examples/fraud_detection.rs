//! The paper's motivating scenario (§I): a financial-transaction network
//! with co-evolving topology (who transacts with whom) and node attributes
//! (transaction behavior). The real data is locked inside a bank; VRDAG
//! learns its distribution and emits a shareable synthetic twin, which an
//! analyst then uses to study dynamic node behavior — here, how quickly
//! high-activity accounts change their counterparties.
//!
//! ```sh
//! cargo run --release --example fraud_detection
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag_suite::metrics;
use vrdag_suite::prelude::*;

/// Per-timestep counterparty turnover of the top-k most active nodes: the
/// fraction of a node's out-neighbors that were not out-neighbors in the
/// previous snapshot (a behavioral fingerprint fraud teams track).
fn counterparty_turnover(g: &DynamicGraph, top_k: usize) -> Vec<f64> {
    // Rank by total out-degree.
    let n = g.n_nodes();
    let mut activity = vec![0usize; n];
    for (_, s) in g.iter() {
        for (i, a) in activity.iter_mut().enumerate() {
            *a += s.out_degree(i);
        }
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| std::cmp::Reverse(activity[i]));
    let hot: Vec<usize> = idx.into_iter().take(top_k).collect();

    (1..g.t_len())
        .map(|t| {
            let prev = g.snapshot(t - 1);
            let cur = g.snapshot(t);
            let mut turnover = 0.0;
            let mut counted = 0usize;
            for &i in &hot {
                let cur_nbrs = cur.out_adj().neighbors(i);
                if cur_nbrs.is_empty() {
                    continue;
                }
                let fresh = cur_nbrs.iter().filter(|&&v| !prev.has_edge(i as u32, v)).count();
                turnover += fresh as f64 / cur_nbrs.len() as f64;
                counted += 1;
            }
            if counted == 0 {
                0.0
            } else {
                turnover / counted as f64
            }
        })
        .collect()
}

fn main() {
    // The "bank-internal" graph: a guaranteed-loan-like network (sparse,
    // directed guarantor → borrower flows, two account attributes).
    let spec = datasets::guarantee().scaled(0.08);
    let private_graph = datasets::generate(&spec, 2024);
    println!(
        "private transaction graph: N={} M={} F={} T={}",
        private_graph.n_nodes(),
        private_graph.temporal_edge_count(),
        private_graph.n_attrs(),
        private_graph.t_len()
    );

    // Train inside the institution...
    let cfg = VrdagConfig { epochs: 10, seed: 99, ..VrdagConfig::default() };
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(99);
    model.fit(&private_graph, &mut rng).expect("fit");
    // ...and release only the synthetic twin.
    let synthetic = model.generate(private_graph.t_len(), &mut rng).expect("generate");
    println!("released synthetic twin: M={} temporal edges", synthetic.temporal_edge_count());

    // The analyst's study runs on the synthetic twin.
    let orig_turnover = counterparty_turnover(&private_graph, 20);
    let synth_turnover = counterparty_turnover(&synthetic, 20);
    println!("\ncounterparty turnover of the 20 most active accounts:");
    println!("{:>4}  {:>10}  {:>10}", "t", "private", "synthetic");
    for (t, (o, s)) in orig_turnover.iter().zip(synth_turnover.iter()).enumerate() {
        println!("{:>4}  {o:>10.4}  {s:>10.4}", t + 1);
    }
    println!(
        "\nturnover series alignment error: {:.4}",
        metrics::series_alignment_error(&orig_turnover, &synth_turnover)
    );

    // Attribute realism check (Fig. 3-style) — what makes the twin usable
    // for attribute-aware fraud models.
    let rep = attribute_report(&private_graph, &synthetic);
    println!("attribute fidelity: JSD={:.4} EMD={:.4}", rep.jsd, rep.emd);
    // Dynamic behavior check (Fig. 4-style).
    let o =
        metrics::structure_difference_series(&private_graph, metrics::StructuralProperty::Degree);
    let s = metrics::structure_difference_series(&synthetic, metrics::StructuralProperty::Degree);
    println!("degree-dynamics alignment error: {:.4}", metrics::series_alignment_error(&o, &s));
}

//! Privacy-preserving data sharing + downstream augmentation (the paper's
//! third motivation and its Fig. 10 case study): a data owner publishes a
//! VRDAG-generated synthetic graph instead of the raw one; a downstream
//! team augments its scarce training data with the synthetic sequence and
//! trains a CoEvoGNN-like forecaster.
//!
//! ```sh
//! cargo run --release --example privacy_sharing
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag_suite::downstream::{evaluate_augmentation, CoEvoConfig};
use vrdag_suite::prelude::*;

fn main() {
    let spec = datasets::email().scaled(0.06);
    let private = datasets::generate(&spec, 11);
    println!(
        "private graph: N={} M={} F={} T={}",
        private.n_nodes(),
        private.temporal_edge_count(),
        private.n_attrs(),
        private.t_len()
    );

    // Owner side: train the generator and publish a synthetic sequence.
    let cfg = VrdagConfig { epochs: 10, seed: 5, ..VrdagConfig::default() };
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(5);
    model.fit(&private, &mut rng).expect("fit");
    let published = model.generate(private.t_len(), &mut rng).expect("generate");

    // No raw edge should be traceable 1:1 — report the overlap (a simple
    // disclosure proxy: lower is safer).
    let mut overlap = 0usize;
    let mut total = 0usize;
    for t in 0..private.t_len() {
        let orig = private.snapshot(t);
        for &(u, v) in published.snapshot(t).edges() {
            total += 1;
            if orig.has_edge(u, v) {
                overlap += 1;
            }
        }
    }
    println!(
        "published synthetic graph: {} temporal edges, {:.1}% overlapping the private edge set",
        total,
        100.0 * overlap as f64 / total.max(1) as f64
    );

    // Downstream side (Fig. 10): forecast the final snapshot with and
    // without augmentation.
    let coevo = CoEvoConfig { epochs: 20, seed: 13, ..CoEvoConfig::default() };
    let base = evaluate_augmentation(&private, None, coevo.clone());
    let augmented = evaluate_augmentation(&private, Some(&published), coevo);
    println!("\ndownstream forecasting of the final snapshot:");
    println!("  without augmentation: F1={:.4} RMSE={:.4}", base.f1, base.rmse);
    println!("  with VRDAG synthetic: F1={:.4} RMSE={:.4}", augmented.f1, augmented.rmse);
    if augmented.f1 >= base.f1 {
        println!("  → augmentation improved link prediction, as in Fig. 10(a)");
    } else {
        println!("  → augmentation did not help on this run/scale");
    }
}

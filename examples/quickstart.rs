//! Quickstart: train VRDAG on a small synthetic dynamic attributed graph,
//! generate a synthetic sequence, and score it with the paper's metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag_suite::metrics;
use vrdag_suite::prelude::*;

fn main() {
    // 1. An "observed" dynamic attributed graph. Real data in the TSV
    //    format of `vrdag_suite::graph::io::load_tsv` works the same way;
    //    here we use a scaled-down Emails-DNC-like synthetic dataset.
    let spec = datasets::email().scaled(0.05);
    let graph = datasets::generate(&spec, 42);
    println!(
        "observed graph: N={} nodes, M={} temporal edges, F={} attributes, T={} snapshots",
        graph.n_nodes(),
        graph.temporal_edge_count(),
        graph.n_attrs(),
        graph.t_len()
    );

    // 2. Configure and train VRDAG (Eq. 14 ELBO: KL + structure BCE +
    //    attribute SCE).
    let cfg = VrdagConfig { epochs: 10, seed: 7, ..VrdagConfig::default() };
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(7);
    let report = model.fit(&graph, &mut rng).expect("training failed");
    println!(
        "trained in {:.2}s over {} epochs; final loss {:.4}",
        report.train_seconds, report.epochs, report.final_loss
    );
    let stats = model.stats().unwrap();
    println!("loss history: {:?}", stats.loss_history);

    // 3. Generate a synthetic dynamic attributed graph (Algorithm 1).
    let generated = model.generate(graph.t_len(), &mut rng).expect("generation failed");
    println!(
        "generated graph: M={} temporal edges across {} snapshots",
        generated.temporal_edge_count(),
        generated.t_len()
    );

    // 4. Evaluate: the Table I structure metrics and Fig. 3 attribute
    //    metrics.
    let s = structure_report(&graph, &generated);
    println!("\nstructure metrics (lower is better):");
    for (name, value) in metrics::StructureReport::headers().iter().zip(s.as_row()) {
        println!("  {name:<12} {value:.4}");
    }
    let a = attribute_report(&graph, &generated);
    println!("\nattribute metrics: JSD={:.4} (≤ ln2) EMD={:.4}", a.jsd, a.emd);
}

//! Scheduler-scaling smoke: the same batch of generation jobs on 1
//! worker and on 2 workers, with correctness asserted (identical
//! outputs either way) and the speedup printed.
//!
//! Intended for CI's multi-core runners — the dev container is
//! single-CPU, where 2 workers legitimately cannot beat 1. Timing is
//! therefore *reported*, and the run only fails on an egregious
//! regression (2 workers slower than 1 by more than the generous
//! [`REGRESSION_FACTOR`]), never on a missed speedup — CI boxes are
//! noisy neighbors.
//!
//! ```sh
//! cargo run --release --example scaling_smoke
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use vrdag_suite::prelude::*;

/// 2 workers may be this many times *slower* than 1 before the smoke
/// fails. Generous on purpose: the gate catches "multi-worker scheduling
/// went pathological", not "the runner was busy".
const REGRESSION_FACTOR: f64 = 1.5;

const JOBS: usize = 16;
const T_LEN: usize = 30;

fn run_batch(registry: &ModelRegistry, workers: usize) -> (f64, Vec<(u64, u64)>) {
    // Cache disabled: every job must really generate, or the second
    // configuration would be measured against warm entries.
    let handle = ServeHandle::with_config(
        registry.clone(),
        ServeConfig { workers, cache: CacheBudget::disabled(), ..Default::default() },
    )
    .unwrap();
    let started = Instant::now();
    let tickets: Vec<Ticket> = (0..JOBS as u64)
        .map(|seed| handle.submit(GenRequest::new("m", T_LEN, seed, GenSink::InMemory)).unwrap())
        .collect();
    // (seed, edge count) per job — a cheap output digest that must not
    // depend on the worker count.
    let mut digests: Vec<(u64, u64)> = tickets
        .into_iter()
        .map(|t| {
            let result = t.wait().unwrap();
            assert!(result.is_ok(), "{:?}", result.error);
            assert_eq!(result.snapshots, T_LEN);
            (result.seed, result.edges as u64)
        })
        .collect();
    let seconds = started.elapsed().as_secs_f64();
    digests.sort_unstable();
    let stats = handle.shutdown();
    assert_eq!(stats.completed, JOBS as u64);
    assert_eq!(stats.failed, 0);
    (seconds, digests)
}

fn main() {
    let graph = datasets::generate(&datasets::tiny(), 7);
    let mut cfg = VrdagConfig::test_small();
    cfg.epochs = 2;
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(7);
    model.fit(&graph, &mut rng).unwrap();
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("scaling smoke: {JOBS} jobs x t={T_LEN} on a {cores}-core host");

    let (t1, d1) = run_batch(&registry, 1);
    let (t2, d2) = run_batch(&registry, 2);
    assert_eq!(d1, d2, "worker count changed the generated outputs");

    let speedup = t1 / t2.max(1e-9);
    println!("  1 worker : {t1:.3}s");
    println!("  2 workers: {t2:.3}s");
    println!("  speedup  : {speedup:.2}x (ideal 2.00x on >=2 cores)");
    if cores < 2 {
        println!("  single-core host: speedup not expected, timing informational only");
    } else if speedup < 1.0 {
        println!("  note: 2 workers did not beat 1 this run — timing may be noisy");
    }
    assert!(
        t2 <= t1 * REGRESSION_FACTOR,
        "2 workers were {:.2}x SLOWER than 1 (allowed {REGRESSION_FACTOR}x) — \
         scheduler scaling regressed",
        t2 / t1.max(1e-9),
    );
    println!("scheduler-scaling smoke passed ✓");
}

//! The serving workflow end to end: train once, register the artifact,
//! stream one sequence to disk with bounded memory, then serve a batch
//! of concurrent seed-addressed generation requests.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag_suite::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("vrdag_serving_example");
    std::fs::create_dir_all(&dir).unwrap();

    // 1. Train a small model (the data owner's side of the paper's
    //    train-once / generate-anywhere deployment) and persist it.
    let graph = datasets::generate(&datasets::tiny(), 42);
    let mut model = Vrdag::new(VrdagConfig::test_small());
    let mut rng = StdRng::seed_from_u64(0);
    let report = model.fit(&graph, &mut rng).unwrap();
    println!(
        "trained on N={} T={} in {:.2}s (final loss {:.4})",
        graph.n_nodes(),
        graph.t_len(),
        report.train_seconds,
        report.final_loss
    );
    let model_path = dir.join("model.vrdg");
    model.save(&model_path).unwrap();

    // 2. Register the artifact. Handles are cheap and thread-safe.
    let registry = ModelRegistry::new();
    let handle = registry.load_file("tiny", &model_path).unwrap();
    println!(
        "registered {:?}: {} bytes, n={} nodes, f={} attrs",
        handle.name(),
        handle.size_bytes(),
        handle.n_nodes(),
        handle.n_attrs()
    );

    // 3. Stream a sequence snapshot-by-snapshot (memory stays bounded by
    //    one snapshot) straight into the TSV format.
    let stream = handle.stream(graph.t_len(), 7).unwrap();
    let tsv_path = dir.join("streamed.tsv");
    let stats = stream
        .spill_tsv(std::io::BufWriter::new(std::fs::File::create(&tsv_path).unwrap()))
        .unwrap();
    println!(
        "streamed {} snapshots / {} edges to {}",
        stats.snapshots,
        stats.edges,
        tsv_path.display()
    );

    // 4. Serve a batch: 8 seed-addressed jobs over 4 workers.
    let mut scheduler = Scheduler::new(registry, 4);
    for seed in 0..8u64 {
        scheduler
            .submit(GenRequest {
                model: "tiny".into(),
                t_len: graph.t_len(),
                seed,
                sink: GenSink::TsvFile(dir.join(format!("gen-{seed}.tsv"))),
            })
            .unwrap();
    }
    let batch = scheduler.join();
    print!("{}", batch.render());
    assert!(batch.all_ok());

    // 5. Determinism across the fleet: job seed 7 equals the stream above.
    let streamed = vrdag_suite::graph::io::load_tsv(&tsv_path).unwrap();
    let job7 = vrdag_suite::graph::io::load_tsv(dir.join("gen-7.tsv")).unwrap();
    assert_eq!(streamed, job7, "seed-addressed generation is deterministic");
    println!("seed 7 via stream == seed 7 via scheduler ✓");
}

//! The serving workflow end to end: train once, register the artifact,
//! stream one sequence to disk with bounded memory, serve a batch of
//! concurrent seed-addressed generation requests, serve a repeated
//! workload out of the snapshot cache, and finally serve concurrent TCP
//! clients over the line protocol — with the same bit-identical results
//! on every path.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag_suite::prelude::*;
use vrdag_suite::serve::protocol::{
    GenSpec, ReplyHeader, Request, StreamOutcome, TagDemux, WireFormat,
};

fn main() {
    let dir = std::env::temp_dir().join("vrdag_serving_example");
    std::fs::create_dir_all(&dir).unwrap();

    // 1. Train a small model (the data owner's side of the paper's
    //    train-once / generate-anywhere deployment) and persist it.
    let graph = datasets::generate(&datasets::tiny(), 42);
    let mut model = Vrdag::new(VrdagConfig::test_small());
    let mut rng = StdRng::seed_from_u64(0);
    let report = model.fit(&graph, &mut rng).unwrap();
    println!(
        "trained on N={} T={} in {:.2}s (final loss {:.4})",
        graph.n_nodes(),
        graph.t_len(),
        report.train_seconds,
        report.final_loss
    );
    let model_path = dir.join("model.vrdg");
    model.save(&model_path).unwrap();

    // 2. Register the artifact. Handles are cheap and thread-safe.
    let registry = ModelRegistry::new();
    let handle = registry.load_file("tiny", &model_path).unwrap();
    println!(
        "registered {:?}: {} bytes, n={} nodes, f={} attrs",
        handle.name(),
        handle.size_bytes(),
        handle.n_nodes(),
        handle.n_attrs()
    );

    // 3. Stream a sequence snapshot-by-snapshot (memory stays bounded by
    //    one snapshot) straight into the TSV format.
    let stream = handle.stream(graph.t_len(), 7).unwrap();
    let tsv_path = dir.join("streamed.tsv");
    let stats = stream
        .spill_tsv(std::io::BufWriter::new(std::fs::File::create(&tsv_path).unwrap()))
        .unwrap();
    println!(
        "streamed {} snapshots / {} edges to {}",
        stats.snapshots,
        stats.edges,
        tsv_path.display()
    );

    // 4. Serve a batch: 8 seed-addressed jobs over 4 workers.
    let mut scheduler = Scheduler::new(registry.clone(), 4).unwrap();
    for seed in 0..8u64 {
        scheduler
            .submit(GenRequest::new(
                "tiny",
                graph.t_len(),
                seed,
                GenSink::TsvFile(dir.join(format!("gen-{seed}.tsv"))),
            ))
            .unwrap();
    }
    let batch = scheduler.join().unwrap();
    print!("{}", batch.render());
    assert!(batch.all_ok());

    // 5. Determinism across the fleet: job seed 7 equals the stream above.
    let streamed = vrdag_suite::graph::io::load_tsv(&tsv_path).unwrap();
    let job7 = vrdag_suite::graph::io::load_tsv(dir.join("gen-7.tsv")).unwrap();
    assert_eq!(streamed, job7, "seed-addressed generation is deterministic");
    println!("seed 7 via stream == seed 7 via scheduler ✓");

    // 6. Repeated traffic through the snapshot cache: the same 4 seeds
    //    requested 3 times. Round one generates (and populates the LRU);
    //    the later rounds are served from it, bit-identically — the
    //    determinism contract is what makes the sequences cacheable.
    let mut cached = Scheduler::with_config(
        registry.clone(),
        ServeConfig { workers: 2, cache: CacheBudget::entries(16), ..Default::default() },
    )
    .unwrap();
    for _round in 0..3 {
        for seed in 0..4u64 {
            cached.submit(GenRequest::new("tiny", graph.t_len(), seed, GenSink::InMemory)).unwrap();
        }
    }
    let report = cached.join().unwrap();
    print!("{}", report.render());
    assert!(report.all_ok());
    assert!(report.cache.hits > 0, "repeated seeds must hit the snapshot cache");
    assert!(report.affinity.max_batch_len > 1, "same-model jobs batch onto one instance");
    assert!(report.latency.p99_seconds >= report.latency.p50_seconds);
    // Cached and cold generations are identical.
    let cold = vrdag_suite::graph::io::load_tsv(dir.join("gen-2.tsv")).unwrap();
    let warm = report
        .jobs
        .iter()
        .find(|j| j.seed == 2 && j.cache_hit)
        .expect("seed 2 was served from the cache at least once");
    assert_eq!(warm.graph.as_deref().unwrap(), &cold, "cache hits are bit-identical");
    println!(
        "cache served {}/{} jobs ({} entries, {} KiB resident), latency {} ✓",
        report.cache_hits(),
        report.jobs.len(),
        report.cache.entries,
        report.cache.bytes / 1024,
        report.latency.render(),
    );

    // 7. The same service over the wire: a ServeHandle core behind the
    //    TCP line-protocol frontend, driven by concurrent clients. The
    //    non-blocking core accepts every request while earlier ones are
    //    still generating, and every streamed reply is bit-identical to
    //    the file the batch stage wrote for that seed.
    let handle = ServeHandle::with_config(
        registry,
        ServeConfig { workers: 2, cache: CacheBudget::entries(16), ..Default::default() },
    )
    .unwrap();
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let addr = frontend.local_addr();
    println!("line-protocol frontend listening on {addr}");
    let t_len = graph.t_len();
    let clients: Vec<_> = (0..3u64)
        .map(|client| {
            std::thread::spawn(move || {
                let mut conn = LineClient::connect(addr).unwrap();
                // Overlapping seeds across clients: the shared snapshot
                // cache coalesces them into one generation each.
                let mut payloads = Vec::new();
                for seed in [client, client + 1] {
                    let reply =
                        conn.gen(GenSpec::new("tiny", t_len, seed, WireFormat::Tsv)).unwrap();
                    match &reply.header {
                        ReplyHeader::Gen { seed: echoed, .. } => assert_eq!(*echoed, seed),
                        other => panic!("expected a GEN reply, got {other:?}"),
                    }
                    payloads.push((seed, reply.payload));
                }
                conn.request(&Request::Quit { tag: None }).unwrap();
                payloads
            })
        })
        .collect();
    for client in clients {
        for (seed, payload) in client.join().unwrap() {
            // gen-{seed}.tsv from the batch stage is the ground truth.
            let expected = std::fs::read(dir.join(format!("gen-{seed}.tsv"))).unwrap();
            assert_eq!(payload, expected, "TCP reply for seed {seed} diverged");
        }
    }
    let stats = handle.stats();
    print!("{}", stats.render());
    assert_eq!(stats.failed, 0);
    assert!(stats.cache.hits > 0, "overlapping client seeds must coalesce");
    println!(
        "wire replies for 3 clients bit-identical to disk, latency {} ✓",
        stats.latency.render(),
    );

    // 8. Pipelining + streaming on ONE connection: fire several tagged
    //    GENs without reading (replies come back matched by tag, in
    //    completion order), then SUBscribe to the same key and verify
    //    the per-snapshot EVT stream concatenates to the buffered
    //    payload, bit for bit.
    let mut conn = LineClient::connect(addr).unwrap();
    let tags: Vec<String> = (0..4u64).map(|seed| format!("job-{seed}")).collect();
    for (seed, tag) in tags.iter().enumerate() {
        conn.send(&Request::Gen(
            GenSpec::new("tiny", t_len, seed as u64, WireFormat::Tsv).with_tag(tag.clone()),
        ))
        .unwrap();
    }
    let mut demux = TagDemux::new();
    for _ in 0..tags.len() {
        let reply = conn.read_frame().unwrap();
        demux.feed(&reply.header, &reply.payload).unwrap();
    }
    for (seed, tag) in tags.iter().enumerate() {
        let expected = std::fs::read(dir.join(format!("gen-{seed}.tsv"))).unwrap();
        assert_eq!(demux.get(tag).unwrap().payload, expected, "pipelined {tag} diverged");
    }
    conn.send(&Request::Sub(GenSpec::new("tiny", t_len, 2, WireFormat::Tsv).with_tag("stream")))
        .unwrap();
    loop {
        let reply = conn.read_frame().unwrap();
        demux.feed(&reply.header, &reply.payload).unwrap();
        if demux.get("stream").is_some_and(|s| s.is_done()) {
            break;
        }
    }
    let stream = demux.take("stream").unwrap();
    assert_eq!(stream.outcome, Some(StreamOutcome::Complete));
    assert_eq!(stream.frames, t_len, "one EVT frame per snapshot");
    assert_eq!(
        stream.payload,
        demux.get("job-2").unwrap().payload,
        "SUB stream must concatenate to the buffered GEN payload"
    );
    conn.request(&Request::Quit { tag: None }).unwrap();
    println!(
        "pipelined {} tagged GENs + a {}-frame SUB stream on one connection ✓",
        tags.len(),
        t_len
    );
    drop(frontend);

    // 9. Multi-tenant serving: pre-shared tokens, a mandatory AUTH
    //    greeting, weighted-fair scheduling, and per-tenant accounting.
    //    Two tenants (weights 3:1) share one core; an unauthenticated
    //    command and a wrong token are both turned away at the door.
    let registry = ModelRegistry::new();
    registry.load_file("tiny", &model_path).unwrap();
    let tenants = TenantRegistry::builder()
        .tenant(Tenant::new(TenantId::new("gold").unwrap()).with_weight(3), "demo-token-gold")
        .unwrap()
        .tenant(
            Tenant::new(TenantId::new("bronze").unwrap()).with_max_inflight(16),
            "demo-token-bronze",
        )
        .unwrap()
        .build();
    let handle = ServeHandle::with_config(
        registry,
        ServeConfig { workers: 2, tenants, ..Default::default() },
    )
    .unwrap();
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let addr = frontend.local_addr();

    // Unauthenticated commands are rejected and the connection closed.
    let mut nosy = LineClient::connect(addr).unwrap();
    let reply = nosy.request(&Request::Ping { tag: None }).unwrap();
    assert!(matches!(
        reply.header,
        ReplyHeader::Err { code: vrdag_suite::serve::protocol::ErrorCode::AuthRequired, .. }
    ));
    assert!(nosy.read_frame().is_err(), "unauthenticated connection must be closed");
    // A wrong token fails closed too.
    let mut wrong = LineClient::connect(addr).unwrap();
    let reply = wrong.auth("not-a-real-token").unwrap();
    assert!(matches!(
        reply.header,
        ReplyHeader::Err { code: vrdag_suite::serve::protocol::ErrorCode::AuthFailed, .. }
    ));

    // Authenticated tenants submit concurrently; stats are per-tenant.
    let workers: Vec<_> = [("demo-token-gold", "gold"), ("demo-token-bronze", "bronze")]
        .into_iter()
        .map(|(token, expect)| {
            std::thread::spawn(move || {
                let mut conn = LineClient::connect(addr).unwrap();
                match conn.auth(token).unwrap().header {
                    ReplyHeader::Auth { tenant, .. } => assert_eq!(tenant, expect),
                    other => panic!("AUTH failed: {other:?}"),
                }
                for seed in 0..4u64 {
                    let reply = conn.gen(GenSpec::new("tiny", 3, seed, WireFormat::Tsv)).unwrap();
                    assert!(matches!(reply.header, ReplyHeader::Gen { .. }));
                }
                conn.request(&Request::Quit { tag: None }).unwrap();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let stats = handle.stats();
    assert_eq!(stats.failed, 0);
    for id in ["gold", "bronze"] {
        let row = stats.tenants.iter().find(|t| t.id == id).expect("tenant row");
        assert_eq!(row.completed, 4, "{id}");
    }
    print!("{}", stats.render());
    println!("authenticated 2 tenants, rejected the rest, per-tenant accounting ✓");
}

#!/usr/bin/env python3
"""Check intra-repo markdown links in README.md, ROADMAP.md and docs/.

Fails (exit 1) on:
  * a relative link whose target file does not exist,
  * a fragment (``#anchor``) that matches no heading in the target file,
  * a bare intra-document fragment with no matching heading.

External links (http/https/mailto) are ignored — CI has no network.
Links inside fenced code blocks and inline code spans are ignored.
Anchors use GitHub's slug rules: lowercase, spaces to hyphens, drop
everything that is not alphanumeric/hyphen/underscore, and ``-<n>``
suffixes for duplicate headings.

Stdlib only; run from anywhere: paths resolve against the repo root
(the parent of this script's directory).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def strip_code(lines, keep_spans=False):
    """Yield (lineno, line) outside fenced blocks, inline code blanked.

    ``keep_spans=True`` leaves inline code spans intact — headings need
    them, since GitHub slugs keep a span's text (minus the backticks).
    """
    fence = None
    for i, line in enumerate(lines, start=1):
        m = FENCE_RE.match(line.strip())
        if m:
            if fence is None:
                fence = m.group(1)
            elif line.strip().startswith(fence):
                fence = None
            continue
        if fence is not None:
            continue
        yield i, line if keep_spans else CODE_SPAN_RE.sub("", line)


def anchors_of(path: Path, cache={}) -> set:
    if path not in cache:
        seen = {}
        out = set()
        lines = path.read_text(encoding="utf-8").splitlines()
        for _, line in strip_code(lines, keep_spans=True):
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = slugify(m.group(2))
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            out.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = out
    return cache[path]


def check_file(md: Path) -> list:
    errors = []
    for lineno, line in strip_code(md.read_text(encoding="utf-8").splitlines()):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if EXTERNAL_RE.match(target):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                dest = (md.parent / path_part).resolve()
                if not dest.exists():
                    errors.append(f"{md.relative_to(REPO)}:{lineno}: broken link: {target}")
                    continue
            else:
                dest = md
            if fragment and dest.suffix == ".md":
                if fragment.lower() not in anchors_of(dest):
                    errors.append(
                        f"{md.relative_to(REPO)}:{lineno}: dangling anchor "
                        f"#{fragment} (no such heading in {dest.relative_to(REPO)})"
                    )
    return errors


def main() -> int:
    files = [REPO / "README.md", REPO / "ROADMAP.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    files = [f for f in files if f.exists()]
    errors = []
    for md in files:
        errors.extend(check_file(md))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} files: {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

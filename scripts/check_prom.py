#!/usr/bin/env python3
"""Lint Prometheus text exposition format (version 0.0.4).

Holds a scrape payload — `GET /metrics` on `--http-addr`, or the wire
`METRICS` payload (they are byte-identical by contract) — to the rules
a real Prometheus server enforces on ingest, plus the conventions our
renderer promises:

  * every line is a `# HELP`/`# TYPE` comment, blank, or a well-formed
    sample (`name{labels} value [timestamp]`),
  * metric and label names match the spec grammar; label values use
    only the three legal escapes (``\\``, ``\"``, ``\n``),
  * each family declares `# TYPE` exactly once, before its samples,
    with a valid type, and all its samples are one contiguous group,
  * no duplicate (name, labelset) sample,
  * values parse as Go floats (including `+Inf`, `-Inf`, `NaN`),
  * histograms are coherent per series (grouping by the labels other
    than `le`): cumulative `_bucket` counts are non-decreasing in
    `le`, the `+Inf` bucket exists and equals `_count`,
  * the exposition ends with a newline.

Stdlib only; no network. Usage::

    check_prom.py payload.prom [more.prom ...]
    some-scraper | check_prom.py -

Exit status 1 if any file has errors, 0 otherwise.
"""

import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
# Suffixes a `histogram`/`summary` TYPE declaration covers.
TYPED_SUFFIXES = {
    "histogram": ("_bucket", "_sum", "_count"),
    "summary": ("_sum", "_count"),
}


def parse_value(text):
    """Parse a Go float as Prometheus does; return None if invalid."""
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    # Go rejects whitespace and bare "inf"/"nan" spellings that Python
    # accepts, so gate on shape first.
    if not re.match(r"^[+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?$", text):
        return None
    return float(text)


def parse_labels(raw, err):
    """Parse `a="b",c="d"` (no braces); return dict or None via err()."""
    labels = {}
    pos = 0
    while pos < len(raw):
        m = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', raw[pos:])
        if not m:
            err(f"malformed label pair at: {raw[pos:]!r}")
            return None
        name = m.group(1)
        pos += m.end()
        value = []
        while pos < len(raw):
            ch = raw[pos]
            if ch == "\\":
                if pos + 1 >= len(raw) or raw[pos + 1] not in ('\\', '"', "n"):
                    err(f"illegal escape in label {name}")
                    return None
                value.append({"\\": "\\", '"': '"', "n": "\n"}[raw[pos + 1]])
                pos += 2
            elif ch == '"':
                pos += 1
                break
            else:
                value.append(ch)
                pos += 1
        else:
            err(f"unterminated label value for {name}")
            return None
        if name in labels:
            err(f"duplicate label name {name}")
            return None
        labels[name] = "".join(value)
        if pos < len(raw):
            if raw[pos] != ",":
                err(f"expected ',' between label pairs at: {raw[pos:]!r}")
                return None
            pos += 1
    return labels


def family_of(name, types):
    """Map a sample name to its declared family, honoring suffixes."""
    if name in types:
        return name
    for mtype, suffixes in TYPED_SUFFIXES.items():
        for suffix in suffixes:
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == mtype:
                return base
    return None


def check_text(text, path):
    errors = []
    types = {}  # family -> type
    helps = set()
    closed = set()  # families whose sample group has ended
    seen_samples = set()  # (name, frozen labelset)
    buckets = {}  # (family, labels sans le) -> [(lineno, le, count)]
    counts = {}  # (family, labels) -> (lineno, _count value)
    current = None

    def err(lineno, msg):
        errors.append(f"{path}:{lineno}: {msg}")

    if text and not text.endswith("\n"):
        errors.append(f"{path}: exposition does not end with a newline")

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = re.match(r"^# (HELP|TYPE) ([^ ]+)(?: (.*))?$", line)
            if not m:
                # Arbitrary comments are legal; HELP/TYPE lookalikes
                # with broken structure are not.
                if re.match(r"^#\s*(HELP|TYPE)\b", line):
                    err(lineno, f"malformed {line.split()[1]} comment")
                continue
            kind, name, rest = m.group(1), m.group(2), m.group(3) or ""
            if not METRIC_NAME_RE.match(name):
                err(lineno, f"invalid metric name in # {kind}: {name}")
                continue
            if kind == "TYPE":
                if rest not in TYPES:
                    err(lineno, f"invalid type {rest!r} for {name}")
                elif name in types:
                    err(lineno, f"second # TYPE for {name}")
                elif name in closed or any(s == name for s, _ in seen_samples):
                    err(lineno, f"# TYPE {name} after its samples")
                else:
                    types[name] = rest
            else:
                if name in helps:
                    err(lineno, f"second # HELP for {name}")
                helps.add(name)
            continue

        m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)(\s+(-?\d+))?\s*$", line)
        if not m:
            err(lineno, f"unparseable sample line: {line!r}")
            continue
        name, raw_labels, value_text = m.group(1), m.group(3), m.group(4)
        labels = parse_labels(raw_labels or "", lambda msg: err(lineno, msg))
        if labels is None:
            continue
        for label in labels:
            if not LABEL_NAME_RE.match(label) or label.startswith("__"):
                err(lineno, f"invalid label name {label}")
        value = parse_value(value_text)
        if value is None:
            err(lineno, f"invalid sample value {value_text!r}")
            continue

        family = family_of(name, types)
        if family is None:
            err(lineno, f"sample {name} has no preceding # TYPE")
            family = name
        if family in closed:
            err(lineno, f"samples for {family} are not contiguous")
        if current is not None and current != family:
            closed.add(current)
        current = family

        key = (name, frozenset(labels.items()))
        if key in seen_samples:
            err(lineno, f"duplicate sample {name}{sorted(labels.items())}")
        seen_samples.add(key)

        if types.get(family) == "histogram":
            if name == family + "_bucket":
                if "le" not in labels:
                    err(lineno, f"{name} without an le label")
                else:
                    le = parse_value(labels["le"])
                    rest = frozenset((k, v) for k, v in labels.items() if k != "le")
                    if le is None:
                        err(lineno, f"unparseable le={labels['le']!r}")
                    else:
                        buckets.setdefault((family, rest), []).append((lineno, le, value))
            elif name == family + "_count":
                counts[(family, frozenset(labels.items()))] = (lineno, value)

    for (family, rest), series in buckets.items():
        at = dict(rest)
        prev = None
        for lineno, le, count in series:
            if prev is not None and count < prev:
                err(lineno, f"{family}_bucket{at} counts decrease at le={le}")
            prev = count
        if not any(le == float("inf") for _, le, _ in series):
            err(series[-1][0], f"{family}{at} has no le=\"+Inf\" bucket")
        elif (family, rest) in counts:
            lineno, total = counts[(family, rest)]
            inf = next(c for _, le, c in series if le == float("inf"))
            if inf != total:
                err(lineno, f"{family}_count{at} {total} != +Inf bucket {inf}")

    return errors


def main(argv):
    paths = argv[1:] or ["-"]
    errors = []
    for path in paths:
        if path == "-":
            text = sys.stdin.read()
        else:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        errors.extend(check_text(text, path))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(paths)} exposition(s): {len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

//! `vrdag-cli` — command-line interface for the VRDAG reproduction.
//!
//! ```text
//! vrdag-cli synth          --dataset Email --scale 0.08 --seed 42 --out graph.tsv
//! vrdag-cli summarize      --graph graph.tsv
//! vrdag-cli fit            --graph graph.tsv --epochs 12 --model model.vrdg
//! vrdag-cli generate       --model model.vrdg --t 14 --out synthetic.tsv
//! vrdag-cli batch-generate --model model.vrdg --t 14 --jobs 8 --workers 4 --out-dir runs/
//! vrdag-cli serve          --addr 127.0.0.1:7878 --model model.vrdg --workers 4
//! vrdag-cli evaluate       --original graph.tsv --generated synthetic.tsv
//! ```
//!
//! Graphs use the TSV format of `vrdag_graph::io` (drop in real datasets
//! the same way); models use the binary format of `vrdag::persist`.
//! `serve` speaks the newline-delimited line protocol of
//! `vrdag_serve::protocol` (see the README's "Serving over the wire").

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;
use vrdag_suite::graph::io;
use vrdag_suite::metrics;
use vrdag_suite::prelude::*;

fn parse_kv(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                map.insert(key.to_string(), args[i + 1].clone());
                i += 2;
                continue;
            }
        }
        eprintln!("warning: ignoring argument {:?}", args[i]);
        i += 1;
    }
    map
}

/// Machine-readable serving-bench report (`batch-generate --json`): one
/// JSON object per run, hand-rendered because the offline tree's serde
/// derives are no-ops. Throughput, latency percentiles, and cache
/// counters — the fields a bench-trajectory consumer plots over time.
fn bench_json_report(
    stats: &ServeStats,
    jobs: usize,
    t: usize,
    total_seconds: f64,
    intra_threads: usize,
    conn_scale: &str,
) -> String {
    let l = &stats.latency;
    let c = &stats.cache;
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"jobs\": {},\n",
            "  \"t\": {},\n",
            "  \"workers\": {},\n",
            "  \"intra_threads\": {},\n",
            "  \"total_seconds\": {:.6},\n",
            "  \"jobs_per_sec\": {:.3},\n",
            "  \"snapshots_per_sec\": {:.3},\n",
            "  \"single_job_wall_ms\": {:.3},\n",
            "  \"snapshots\": {},\n",
            "  \"edges\": {},\n",
            "  \"latency_ms\": {{ \"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}, \"mean\": {:.3}, \"max\": {:.3} }},\n",
            "  \"stages_ms\": {{ \"queue_wait_p50\": {:.3}, \"queue_wait_p95\": {:.3}, \"first_snapshot_p50\": {:.3}, \"first_snapshot_p95\": {:.3}, \"generation_p50\": {:.3}, \"generation_p95\": {:.3}, \"delivery_p50\": {:.3}, \"delivery_p95\": {:.3}, \"encode_wait_p50\": {:.3}, \"encode_wait_p95\": {:.3} }},\n",
            "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"evicted_bytes\": {}, \"entries\": {}, \"bytes\": {} }},\n",
            "{}",
            "  \"max_in_flight\": {}\n",
            "}}\n",
        ),
        jobs,
        t,
        stats.workers,
        intra_threads,
        total_seconds,
        jobs as f64 / total_seconds.max(1e-9),
        stats.snapshots as f64 / total_seconds.max(1e-9),
        // Worst single-job wall clock: with a 1-job workload this IS the
        // job's wall time — the intra-job speedup gate reads it.
        l.max_seconds * 1e3,
        stats.snapshots,
        stats.edges,
        l.p50_seconds * 1e3,
        l.p95_seconds * 1e3,
        l.p99_seconds * 1e3,
        l.mean_seconds * 1e3,
        l.max_seconds * 1e3,
        stats.stages.queue_wait.p50_seconds * 1e3,
        stats.stages.queue_wait.p95_seconds * 1e3,
        stats.stages.first_snapshot.p50_seconds * 1e3,
        stats.stages.first_snapshot.p95_seconds * 1e3,
        stats.stages.generation.p50_seconds * 1e3,
        stats.stages.generation.p95_seconds * 1e3,
        stats.stages.delivery.p50_seconds * 1e3,
        stats.stages.delivery.p95_seconds * 1e3,
        stats.stages.encode_wait.p50_seconds * 1e3,
        stats.stages.encode_wait.p95_seconds * 1e3,
        c.hits,
        c.misses,
        c.evictions,
        c.evicted_bytes,
        c.entries,
        c.bytes,
        conn_scale,
        stats.max_in_flight,
    )
}

/// Connection-scale micro-bench for the reactor frontend: bind a
/// throwaway frontend on a loopback port, open as many idle connections
/// as the fd budget allows (up to 5000, two descriptors per connection),
/// and report the accept throughput plus the resident set while the
/// whole herd is parked. Feeds the `accepted_per_sec` /
/// `c5k_idle_rss_bytes` fields of the bench report; returns `None` when
/// the environment cannot host a meaningful herd (tiny fd limit, bind
/// failure), in which case the report simply omits the fields and
/// `bench-check` skips the matching gates.
fn conn_scale_bench() -> Option<(usize, f64, Option<u64>)> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use vrdag_suite::serve::poll_os;
    let budget = poll_os::raise_nofile_limit().unwrap_or(1024);
    let target = (budget.saturating_sub(512) / 2).min(5_000) as usize;
    if target < 256 {
        return None;
    }
    // Empty registry: the bench exercises accept/registration only, no
    // job ever needs a model.
    let handle = ServeHandle::with_config(
        ModelRegistry::new(),
        ServeConfig { workers: 1, logger: Logger::disabled(), ..Default::default() },
    )
    .ok()?;
    let mut frontend = Frontend::bind_with(
        handle.clone(),
        "127.0.0.1:0",
        FrontendConfig { max_connections: Some(target + 64), ..Default::default() },
    )
    .ok()?;
    let addr = frontend.local_addr();
    let release = Arc::new(AtomicBool::new(false));
    let started = std::time::Instant::now();
    let openers: Vec<_> = (0..8)
        .map(|i| {
            let release = Arc::clone(&release);
            let share = target / 8 + usize::from(i < target % 8);
            std::thread::spawn(move || {
                let conns: Vec<_> =
                    (0..share).filter_map(|_| std::net::TcpStream::connect(addr).ok()).collect();
                while !release.load(Ordering::Acquire) {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                drop(conns);
            })
        })
        .collect();
    // A connection counts once the reactor has accepted and registered
    // it — wait for the whole herd to land before sampling.
    let deadline = started + std::time::Duration::from_secs(60);
    while frontend.open_connections() < target && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let elapsed = started.elapsed().as_secs_f64();
    let opened = frontend.open_connections();
    let rss = poll_os::current_rss_bytes();
    release.store(true, Ordering::Release);
    for t in openers {
        let _ = t.join();
    }
    frontend.shutdown();
    handle.shutdown();
    // Partial herds (connect failures, timeout) below the meaningful
    // floor are dropped rather than recorded as a bogus data point.
    if opened < 256 {
        return None;
    }
    Some((opened, opened as f64 / elapsed.max(1e-9), rss))
}

/// Router-relay micro-bench: two in-process backends behind a
/// [`Router`] on loopback ports, one pipelined client firing tagged
/// `GEN`s through the relay. Measures end-to-end routed jobs/sec — the
/// cost of the extra hop (placement + verbatim relay) on top of the
/// backends' own serving throughput. Returns `None` when any setup step
/// fails (port exhaustion, bind failure), in which case the report
/// omits the field and `bench-check` skips the gate.
fn route_relay_bench(model_path: &str, t: usize) -> Option<f64> {
    use vrdag_suite::serve::protocol::{GenSpec, ReplyHeader, Request, WireFormat};
    let jobs = 48usize;
    let t = t.clamp(1, 6);
    let mut backends = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..2 {
        let registry = ModelRegistry::new();
        registry.load_file("model", model_path).ok()?;
        let handle = ServeHandle::with_config(
            registry,
            ServeConfig {
                workers: 2,
                cache: CacheBudget::entries(64),
                logger: Logger::disabled(),
                ..Default::default()
            },
        )
        .ok()?;
        // Internal-hop mode: the router stamps tenant=/trace= on the
        // relayed lines, which only an internal frontend accepts.
        let frontend = Frontend::bind_with(
            handle.clone(),
            "127.0.0.1:0",
            FrontendConfig { trust_tenant_assertion: true, ..Default::default() },
        )
        .ok()?;
        addrs.push(frontend.local_addr());
        backends.push((handle, frontend));
    }
    let mut router = Router::bind(
        "127.0.0.1:0",
        addrs,
        RouterConfig { logger: Logger::disabled(), ..Default::default() },
    )
    .ok()?;
    let mut client = LineClient::connect(router.local_addr()).ok()?;
    let started = std::time::Instant::now();
    for i in 0..jobs {
        let spec = GenSpec::new("model", t, i as u64, WireFormat::Bin).with_tag(format!("b{i}"));
        client.send(&Request::Gen(spec)).ok()?;
    }
    let mut done = 0usize;
    while done < jobs {
        let reply = client.read_frame().ok()?;
        match reply.header {
            ReplyHeader::Gen { .. } => done += 1,
            ReplyHeader::Err { .. } => return None,
            _ => {}
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let _ = client.request(&Request::Quit { tag: None });
    router.shutdown();
    for (handle, mut frontend) in backends {
        frontend.shutdown();
        handle.shutdown();
    }
    Some(jobs as f64 / elapsed.max(1e-9))
}

/// Pull one numeric field out of a hand-rendered bench report without a
/// JSON parser (the offline tree has none): finds `"key":` and parses
/// the number that follows.
fn json_number_field(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: vrdag-cli <synth|summarize|fit|generate|batch-generate|serve|route|bench-check|evaluate> [--key value ...]\n\
         \n\
         synth          --dataset <name> [--scale F] [--seed N] --out <graph.tsv>\n\
         summarize      --graph <graph.tsv>\n\
         fit            --graph <graph.tsv> [--epochs N] [--seed N] --model <model.vrdg>\n\
         generate       --model <model.vrdg> --t <T> [--seed N] --out <synthetic.tsv>\n\
         batch-generate --model <model.vrdg> --t <T> [--jobs N] [--workers N] [--seed N]\n\
         \x20              [--repeat R] [--cache-entries N] [--priority P] [--queue-depth N]\n\
         \x20              [--intra-threads N] [--format tsv|bin] [--json <report.json>]\n\
         \x20              --out-dir <dir>   (one file per job, seed-addressed)\n\
         serve          --model <model.vrdg> [--name NAME] [--models n1=p1,n2=p2,...]\n\
         \x20              [--addr HOST:PORT] [--workers N] [--intra-threads N]\n\
         \x20              [--cache-entries N] [--queue-depth N]\n\
         \x20              [--max-conns N] [--max-inflight N] [--poller auto|epoll|scan]\n\
         \x20              [--tenants <tenants.conf>] [--internal true]\n\
         \x20              [--log-level error|warn|info|debug|off] [--log-json true]\n\
         \x20              [--metrics-json <path>] [--http-addr HOST:PORT]\n\
         \x20              (pipelined line protocol — see docs/PROTOCOL.md; --internal true\n\
         \x20               trusts tenant= and trace= assertions from a fronting router;\n\
         \x20               --http-addr serves /metrics /healthz /readyz /traces /logs)\n\
         route          --backends HOST:PORT,HOST:PORT,... [--addr HOST:PORT]\n\
         \x20              [--tenants <tenants.conf>] [--max-inflight N] [--gen-retries N]\n\
         \x20              [--retry-backoff-ms MS] [--dial-timeout-ms MS] [--seed-range N]\n\
         \x20              [--poller auto|epoll|scan]\n\
         \x20              [--log-level error|warn|info|debug|off] [--log-json true]\n\
         \x20              [--metrics-json <path>] [--http-addr HOST:PORT]\n\
         \x20              (sharded front tier: terminates AUTH, consistent-hashes\n\
         \x20               (model, seed-range) onto the backends, relays replies\n\
         \x20               verbatim, retries idempotent GENs on backend failure;\n\
         \x20               run the backends with --internal true)\n\
         bench-check    --fresh <new.json> --floor <BENCH_serve.json> [--ratio R]\n\
         \x20              (fail when fresh snapshots_per_sec or accepted_per_sec\n\
         \x20               < floor/R, or fresh single_job_wall_ms or\n\
         \x20               c5k_idle_rss_bytes > floor*R; default R=3; gates whose\n\
         \x20               field is absent from either report are skipped)\n\
         evaluate       --original <graph.tsv> --generated <graph.tsv>"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    let kv = parse_kv(&args[1..]);
    let seed: u64 = kv.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    match cmd.as_str() {
        "synth" => {
            let (Some(name), Some(out)) = (kv.get("dataset"), kv.get("out")) else {
                return usage();
            };
            let scale: f64 = kv.get("scale").and_then(|s| s.parse().ok()).unwrap_or(1.0);
            // The error's display form lists every valid spec name, so
            // this message can never drift out of sync with the crate.
            let spec = match datasets::by_name_or_err(name) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let g = datasets::generate(&spec.scaled(scale), seed);
            if let Err(e) = io::save_tsv(&g, out) {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {out}: N={} M={} F={} T={}",
                g.n_nodes(),
                g.temporal_edge_count(),
                g.n_attrs(),
                g.t_len()
            );
        }
        "summarize" => {
            let Some(path) = kv.get("graph") else { return usage() };
            match io::load_tsv(path) {
                Ok(g) => println!("{}", metrics::summarize(&g).render()),
                Err(e) => {
                    eprintln!("load failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "fit" => {
            let (Some(graph_path), Some(model_path)) = (kv.get("graph"), kv.get("model")) else {
                return usage();
            };
            let g = match io::load_tsv(graph_path) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("load failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let epochs: usize = kv.get("epochs").and_then(|s| s.parse().ok()).unwrap_or(12);
            let cfg = VrdagConfig { epochs, seed, ..VrdagConfig::default() };
            let mut model = Vrdag::new(cfg);
            let mut rng = StdRng::seed_from_u64(seed);
            match model.fit(&g, &mut rng) {
                Ok(report) => println!(
                    "trained in {:.2}s over {} epochs; final loss {:.4}",
                    report.train_seconds, report.epochs, report.final_loss
                ),
                Err(e) => {
                    eprintln!("fit failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Err(e) = model.save(model_path) {
                eprintln!("save failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {model_path}");
        }
        "generate" => {
            let (Some(model_path), Some(out)) = (kv.get("model"), kv.get("out")) else {
                return usage();
            };
            let Some(t): Option<usize> = kv.get("t").and_then(|s| s.parse().ok()) else {
                eprintln!("--t <snapshots> is required");
                return ExitCode::FAILURE;
            };
            if t == 0 {
                eprintln!("--t must be >= 1 (a dynamic graph needs at least one snapshot)");
                return ExitCode::FAILURE;
            }
            let model = match Vrdag::load(model_path) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("model load failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let g = match model.generate(t, &mut rng) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("generation failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = io::save_tsv(&g, out) {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out}: M={} temporal edges", g.temporal_edge_count());
        }
        "batch-generate" => {
            // Serving-layer batch on the non-blocking core: load the
            // model once into the registry, fire T-snapshot generation
            // jobs (seeds seed..seed+jobs) at a ServeHandle, keep the
            // tickets, and drain them at the end. `--repeat R` resubmits
            // the whole seed range R more times with discarded output
            // (two rounds writing one path would race) — combined with
            // `--cache-entries N` the later rounds are served from the
            // snapshot LRU instead of regenerating.
            let (Some(model_path), Some(out_dir)) = (kv.get("model"), kv.get("out-dir")) else {
                return usage();
            };
            let Some(t): Option<usize> = kv.get("t").and_then(|s| s.parse().ok()) else {
                eprintln!("--t <snapshots> is required");
                return ExitCode::FAILURE;
            };
            if t == 0 {
                eprintln!("--t must be >= 1 (a dynamic graph needs at least one snapshot)");
                return ExitCode::FAILURE;
            }
            let jobs: usize = kv.get("jobs").and_then(|s| s.parse().ok()).unwrap_or(4);
            let workers: usize = kv.get("workers").and_then(|s| s.parse().ok()).unwrap_or(2);
            let repeat: usize = kv.get("repeat").and_then(|s| s.parse().ok()).unwrap_or(1);
            let cache_entries: usize =
                kv.get("cache-entries").and_then(|s| s.parse().ok()).unwrap_or(0);
            let priority: i32 = kv.get("priority").and_then(|s| s.parse().ok()).unwrap_or(0);
            let queue_depth: Option<usize> = kv.get("queue-depth").and_then(|s| s.parse().ok());
            let intra_threads: Option<usize> = kv.get("intra-threads").and_then(|s| s.parse().ok());
            let format = kv.get("format").map(String::as_str).unwrap_or("tsv");
            if !matches!(format, "tsv" | "bin") {
                eprintln!("--format must be tsv or bin, got {format:?}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::create_dir_all(out_dir) {
                eprintln!("cannot create {out_dir}: {e}");
                return ExitCode::FAILURE;
            }
            let registry = ModelRegistry::new();
            if let Err(e) = registry.load_file("model", model_path) {
                eprintln!("model load failed: {e}");
                return ExitCode::FAILURE;
            }
            let config = ServeConfig {
                workers,
                max_queue_depth: queue_depth,
                cache: CacheBudget::entries(cache_entries),
                intra_threads,
                ..Default::default()
            };
            let handle = match ServeHandle::with_config(registry, config) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("service construction failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let bench_started = std::time::Instant::now();
            let mut tickets = Vec::with_capacity(jobs * repeat.max(1));
            for round in 0..repeat.max(1) {
                for job_seed in (0..jobs as u64).map(|i| seed.wrapping_add(i)) {
                    // Only the first round owns the output files; repeat
                    // rounds exist to exercise the cache and must not
                    // write paths another in-flight job may hold open.
                    // (submit consumes the sink, so build one per try.)
                    let make_sink = || {
                        if round > 0 {
                            return GenSink::Discard;
                        }
                        let ext = if format == "tsv" { "tsv" } else { "vdag" };
                        let path =
                            std::path::Path::new(out_dir).join(format!("gen-{job_seed}.{ext}"));
                        if format == "tsv" {
                            GenSink::TsvFile(path)
                        } else {
                            GenSink::BinaryFile(path)
                        }
                    };
                    loop {
                        let req = GenRequest::new("model", t, job_seed, make_sink())
                            .with_priority(priority);
                        match handle.submit(req) {
                            Ok(ticket) => {
                                tickets.push(ticket);
                                break;
                            }
                            Err(ServeError::QueueFull { .. }) => {
                                // QueueFull is our own backpressure on
                                // our own finite batch — wait for the
                                // workers to drain a slot and retry,
                                // instead of aborting with partial
                                // output.
                                std::thread::sleep(std::time::Duration::from_millis(2));
                            }
                            Err(e) => {
                                eprintln!("submit failed: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                }
            }
            let effective_intra = handle.intra_threads();
            let mut failed = false;
            for ticket in tickets {
                match ticket.wait() {
                    Ok(result) => {
                        if let Some(e) = &result.error {
                            eprintln!("job {} (seed {}) failed: {e}", result.id.0, result.seed);
                            failed = true;
                        } else {
                            println!(
                                "job {:>3}  t={} seed={}  {:.3}s  {:.1} snapshots/s  {} edges{}",
                                result.id.0,
                                result.t_len,
                                result.seed,
                                result.seconds,
                                result.snapshots_per_sec,
                                result.edges,
                                if result.cache_hit { "  (cache hit)" } else { "" },
                            );
                        }
                    }
                    Err(e) => {
                        eprintln!("job dropped: {e}");
                        failed = true;
                    }
                }
            }
            // Graceful drain, then the final stats snapshot — including
            // the per-job latency percentiles.
            let stats = handle.shutdown();
            let total_seconds = bench_started.elapsed().as_secs_f64();
            print!("{}", stats.render());
            if let Some(json_path) = kv.get("json") {
                // Machine-readable bench point (e.g. BENCH_serve.json):
                // the bench trajectory accumulates these across runs.
                // The conn-scale pass runs after the job bench so its
                // idle herd never shares the process with generation
                // work (RSS and accept timing stay clean).
                let mut conn_scale = match conn_scale_bench() {
                    Some((conns, accepted_per_sec, rss)) => {
                        let rss_line = rss
                            .map_or(String::new(), |b| format!("  \"c5k_idle_rss_bytes\": {b},\n"));
                        format!(
                            "  \"conn_scale_conns\": {conns},\n  \"accepted_per_sec\": {accepted_per_sec:.3},\n{rss_line}",
                        )
                    }
                    None => String::new(),
                };
                // Router-relay pass: the same protocol through a 2-node
                // sharded tier. Skip-if-absent like the conn-scale
                // fields, so floors that predate the router still gate.
                if let Some(relay) = route_relay_bench(model_path, t) {
                    conn_scale.push_str(&format!("  \"route_relay_jobs_per_sec\": {relay:.3},\n"));
                }
                let report = bench_json_report(
                    &stats,
                    jobs * repeat.max(1),
                    t,
                    total_seconds,
                    effective_intra,
                    &conn_scale,
                );
                if let Err(e) = std::fs::write(json_path, &report) {
                    eprintln!("cannot write {json_path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {json_path}");
            }
            if failed {
                return ExitCode::FAILURE;
            }
        }
        "serve" => {
            // Long-lived TCP frontend over the non-blocking service
            // core. Register either one model (--model [+ --name]) or a
            // comma-separated list (--models a=p1,b=p2); clients speak
            // the line protocol documented in the README.
            let addr = kv.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7878".to_string());
            let workers: usize = kv.get("workers").and_then(|s| s.parse().ok()).unwrap_or(2);
            let cache_entries: usize =
                kv.get("cache-entries").and_then(|s| s.parse().ok()).unwrap_or(64);
            let queue_depth: Option<usize> = kv.get("queue-depth").and_then(|s| s.parse().ok());
            let intra_threads: Option<usize> = kv.get("intra-threads").and_then(|s| s.parse().ok());
            let mut frontend_cfg = FrontendConfig::default();
            if let Some(max_conns) = kv.get("max-conns").and_then(|s| s.parse().ok()) {
                // 0 means "no cap" on the command line.
                frontend_cfg.max_connections = (max_conns > 0).then_some(max_conns);
            }
            if let Some(max_inflight) = kv.get("max-inflight").and_then(|s| s.parse().ok()) {
                frontend_cfg.max_inflight_per_conn = max_inflight;
            }
            // Internal-hop mode for nodes behind `vrdag-cli route`: the
            // router terminated AUTH already, so this node trusts the
            // relayed `tenant=` assertion instead of gating on tokens.
            // Bind such a node to loopback or a private network only.
            frontend_cfg.trust_tenant_assertion =
                kv.get("internal").map(String::as_str) == Some("true");
            if let Some(name) = kv.get("poller") {
                match PollerBackend::parse(name) {
                    Some(backend) => frontend_cfg.poller = backend,
                    None => {
                        eprintln!("--poller must be auto|epoll|scan, got {name:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let registry = ModelRegistry::new();
            if let Some(model_path) = kv.get("model") {
                let name = kv.get("name").map(String::as_str).unwrap_or("model");
                if let Err(e) = registry.load_file(name, model_path) {
                    eprintln!("model load failed ({model_path}): {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some(list) = kv.get("models") {
                for entry in list.split(',').filter(|s| !s.is_empty()) {
                    let Some((name, path)) = entry.split_once('=') else {
                        eprintln!("--models entries must be name=path, got {entry:?}");
                        return ExitCode::FAILURE;
                    };
                    if let Err(e) = registry.load_file(name, path) {
                        eprintln!("model load failed ({path}): {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if registry.is_empty() {
                eprintln!("serve needs at least one model (--model or --models)");
                return ExitCode::FAILURE;
            }
            let tenants = match kv.get("tenants") {
                None => TenantRegistry::anonymous_only(),
                Some(path) => match TenantRegistry::from_file(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("tenants config load failed ({path}): {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            // Structured startup/runtime logging: --log-level off
            // silences it, --log-json true switches the lines to JSON.
            let log_json = kv.get("log-json").map(String::as_str) == Some("true");
            let logger = match kv.get("log-level").map(String::as_str).unwrap_or("info") {
                "off" | "none" => Logger::disabled(),
                name => match Level::parse(name) {
                    Some(level) => Logger::to_stderr(level, log_json),
                    None => {
                        eprintln!("--log-level must be error|warn|info|debug|off, got {name:?}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let config = ServeConfig {
                workers,
                max_queue_depth: queue_depth,
                cache: CacheBudget::entries(cache_entries),
                tenants: tenants.clone(),
                logger: logger.clone(),
                intra_threads,
            };
            let cache_budget = config.cache;
            let handle = match ServeHandle::with_config(registry, config) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("service construction failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let frontend =
                match Frontend::bind_with(handle.clone(), addr.as_str(), frontend_cfg.clone()) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("cannot bind {addr}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            let local = frontend.local_addr();
            // Log the full effective configuration at startup so a
            // deployment is auditable from its log output alone (the
            // frontend already logged its own "listening" event).
            logger.info(
                "serve.cli",
                "vrdag-serve started",
                &[
                    ("addr", local.to_string()),
                    ("workers", workers.to_string()),
                    ("intra_threads", handle.intra_threads().to_string()),
                    (
                        "queue_depth_cap",
                        queue_depth.map_or("unlimited".to_string(), |d| d.to_string()),
                    ),
                    ("cache_entries", cache_budget.max_entries.to_string()),
                    ("cache_mib", (cache_budget.max_bytes >> 20).to_string()),
                    (
                        "max_conns",
                        frontend_cfg
                            .max_connections
                            .map_or("unlimited".to_string(), |c| c.to_string()),
                    ),
                    ("max_inflight_per_conn", frontend_cfg.max_inflight_per_conn.to_string()),
                    ("poller", frontend.poller().to_string()),
                    (
                        "auth",
                        if frontend_cfg.trust_tenant_assertion {
                            "internal (trusting router tenant= assertions)".to_string()
                        } else if tenants.auth_enabled() {
                            format!("on ({} tenants)", tenants.len())
                        } else {
                            "off".to_string()
                        },
                    ),
                ],
            );
            for h in handle.registry().handles() {
                logger.info(
                    "serve.cli",
                    "model registered",
                    &[
                        ("name", h.name().to_string()),
                        ("nodes", h.n_nodes().to_string()),
                        ("attrs", h.n_attrs().to_string()),
                        ("bytes", h.size_bytes().to_string()),
                        ("fingerprint", format!("{:016x}", h.fingerprint())),
                    ],
                );
            }
            logger.info(
                "serve.cli",
                "try it",
                &[(
                    "hint",
                    format!(
                        "printf '{}MODELS\\n' | nc {} {}",
                        if tenants.auth_enabled() { "AUTH token=<token>\\n" } else { "" },
                        local.ip(),
                        local.port(),
                    ),
                )],
            );
            // Optional HTTP observability listener: /metrics (identical
            // to the wire METRICS payload), /healthz, /readyz, /traces,
            // /logs — see docs/OPERATIONS.md.
            let _http = match kv.get("http-addr") {
                None => None,
                Some(http_addr) => {
                    let metrics_handle = handle.clone();
                    let ready_handle = handle.clone();
                    let endpoints = HttpEndpoints {
                        metrics: Box::new(move || metrics_handle.metrics_text()),
                        ready: Box::new(move || ready_handle.is_accepting()),
                        spans: frontend.spans().clone(),
                        logger: logger.clone(),
                    };
                    match HttpExpo::bind(http_addr.as_str(), endpoints) {
                        Ok(expo) => {
                            logger.info(
                                "serve.cli",
                                "http observability listening",
                                &[("http_addr", expo.local_addr().to_string())],
                            );
                            Some(expo)
                        }
                        Err(e) => {
                            eprintln!("cannot bind http {http_addr}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            };
            let metrics_json_path = kv.get("metrics-json").cloned();
            let dump_metrics = |handle: &ServeHandle| {
                if let Some(path) = &metrics_json_path {
                    if let Err(e) = std::fs::write(path, handle.metrics_json()) {
                        logger.warn(
                            "serve.cli",
                            "metrics dump failed",
                            &[("path", path.clone()), ("error", e.to_string())],
                        );
                    }
                }
            };
            // Write the dump immediately so scrapers find the file
            // without waiting out the first stats interval.
            dump_metrics(&handle);
            // Serve until killed; periodically surface the running
            // stats so an operator tailing the process sees traffic,
            // and refresh the machine-readable metrics dump if asked.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(60));
                print!("{}", handle.stats().render());
                dump_metrics(&handle);
            }
        }
        "route" => {
            // Sharded front tier: one process speaking the line
            // protocol on both hops. Clients connect here exactly as
            // they would to a single vrdag-serve; requests are
            // consistent-hashed onto the --backends fleet (run those
            // with `serve --internal true` so per-tenant quotas follow
            // the relayed tenant= assertion).
            let addr = kv.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7879".to_string());
            let Some(list) = kv.get("backends") else {
                eprintln!("route needs --backends HOST:PORT,HOST:PORT,...");
                return usage();
            };
            let mut backends = Vec::new();
            for entry in list.split(',').filter(|s| !s.is_empty()) {
                use std::net::ToSocketAddrs;
                match entry.to_socket_addrs().ok().and_then(|mut it| it.next()) {
                    Some(sockaddr) => backends.push(sockaddr),
                    None => {
                        eprintln!("cannot resolve backend address {entry:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if backends.is_empty() {
                eprintln!("route needs at least one backend");
                return ExitCode::FAILURE;
            }
            let tenants = match kv.get("tenants") {
                None => TenantRegistry::anonymous_only(),
                Some(path) => match TenantRegistry::from_file(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("tenants config load failed ({path}): {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let log_json = kv.get("log-json").map(String::as_str) == Some("true");
            let logger = match kv.get("log-level").map(String::as_str).unwrap_or("info") {
                "off" | "none" => Logger::disabled(),
                name => match Level::parse(name) {
                    Some(level) => Logger::to_stderr(level, log_json),
                    None => {
                        eprintln!("--log-level must be error|warn|info|debug|off, got {name:?}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let mut cfg = RouterConfig {
                tenants: tenants.clone(),
                logger: logger.clone(),
                ..Default::default()
            };
            if let Some(n) = kv.get("max-inflight").and_then(|s| s.parse().ok()) {
                cfg.max_inflight_per_conn = n;
            }
            if let Some(n) = kv.get("gen-retries").and_then(|s| s.parse().ok()) {
                cfg.gen_retries = n;
            }
            if let Some(ms) = kv.get("retry-backoff-ms").and_then(|s| s.parse().ok()) {
                cfg.retry_backoff = std::time::Duration::from_millis(ms);
            }
            if let Some(ms) = kv.get("dial-timeout-ms").and_then(|s| s.parse().ok()) {
                cfg.dial_timeout = std::time::Duration::from_millis(ms);
            }
            if let Some(n) = kv.get("seed-range").and_then(|s| s.parse::<u64>().ok()) {
                cfg.seed_range = n.max(1);
            }
            if let Some(name) = kv.get("poller") {
                match PollerBackend::parse(name) {
                    Some(backend) => cfg.poller = backend,
                    None => {
                        eprintln!("--poller must be auto|epoll|scan, got {name:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let n_backends = backends.len();
            // Behind an `Arc` so the HTTP endpoint closures can call
            // into it from their own threads; the route loop below
            // never exits, so the router is never shut down explicitly.
            let router = match Router::bind(addr.as_str(), backends, cfg) {
                Ok(r) => std::sync::Arc::new(r),
                Err(e) => {
                    eprintln!("cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            logger.info(
                "route.cli",
                "vrdag-route started",
                &[
                    ("addr", router.local_addr().to_string()),
                    ("backends", n_backends.to_string()),
                    (
                        "auth",
                        if tenants.auth_enabled() {
                            format!("on ({} tenants, asserted to backends)", tenants.len())
                        } else {
                            "off".to_string()
                        },
                    ),
                ],
            );
            // Optional HTTP observability listener, same shape as the
            // serve tier's: /metrics fans out to the backends exactly
            // like the wire METRICS aggregate, /readyz demands >= 1
            // backend up.
            let _http = match kv.get("http-addr") {
                None => None,
                Some(http_addr) => {
                    let metrics_router = std::sync::Arc::clone(&router);
                    let ready_router = std::sync::Arc::clone(&router);
                    let endpoints = HttpEndpoints {
                        metrics: Box::new(move || metrics_router.metrics_text()),
                        ready: Box::new(move || ready_router.ready()),
                        spans: router.spans().clone(),
                        logger: logger.clone(),
                    };
                    match HttpExpo::bind(http_addr.as_str(), endpoints) {
                        Ok(expo) => {
                            logger.info(
                                "route.cli",
                                "http observability listening",
                                &[("http_addr", expo.local_addr().to_string())],
                            );
                            Some(expo)
                        }
                        Err(e) => {
                            eprintln!("cannot bind http {http_addr}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            };
            let metrics_json_path = kv.get("metrics-json").cloned();
            let dump_metrics = || {
                if let Some(path) = &metrics_json_path {
                    if let Err(e) = std::fs::write(path, router.metrics().render_json()) {
                        logger.warn(
                            "route.cli",
                            "metrics dump failed",
                            &[("path", path.clone()), ("error", e.to_string())],
                        );
                    }
                }
            };
            // Write the dump immediately so scrapers find the file
            // without waiting out the first stats interval.
            dump_metrics();
            // Route until killed; periodically surface the router's own
            // metrics so an operator tailing the process sees traffic,
            // and refresh the machine-readable metrics dump if asked.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(60));
                print!("{}", router.metrics().render());
                dump_metrics();
            }
        }
        "bench-check" => {
            // CI regression gate over the committed bench floor: compare
            // a freshly produced `batch-generate --json` report against
            // the checked-in one and fail on a >R-fold throughput drop.
            // The wide default ratio tolerates noisy shared runners; a
            // genuine perf regression lands well past it.
            let (Some(fresh_path), Some(floor_path)) = (kv.get("fresh"), kv.get("floor")) else {
                return usage();
            };
            let ratio: f64 = kv.get("ratio").and_then(|s| s.parse().ok()).unwrap_or(3.0);
            let read = |path: &String| match std::fs::read_to_string(path) {
                Ok(text) => Some(text),
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    None
                }
            };
            let (Some(fresh), Some(floor)) = (read(fresh_path), read(floor_path)) else {
                return ExitCode::FAILURE;
            };
            let field = "snapshots_per_sec";
            let (Some(fresh_v), Some(floor_v)) =
                (json_number_field(&fresh, field), json_number_field(&floor, field))
            else {
                eprintln!("missing {field:?} in one of the reports");
                return ExitCode::FAILURE;
            };
            let min = floor_v / ratio.max(1.0);
            println!(
                "bench-check: fresh {fresh_v:.3} snapshots/s vs floor {floor_v:.3} (min allowed {min:.3})",
            );
            if fresh_v < min {
                eprintln!(
                    "bench-check FAILED: {fresh_v:.3} < {min:.3} (floor {floor_v:.3} / ratio {ratio})",
                );
                return ExitCode::FAILURE;
            }
            // Second gate, upper bound this time: the worst single-job
            // wall clock must not blow past the recorded floor (intra-job
            // parallelism regression shows up here even when aggregate
            // throughput hides it behind more workers). Skipped when
            // either report predates the field.
            let wall = "single_job_wall_ms";
            match (json_number_field(&fresh, wall), json_number_field(&floor, wall)) {
                (Some(fresh_w), Some(floor_w)) => {
                    let max = floor_w * ratio.max(1.0);
                    println!(
                        "bench-check: fresh {fresh_w:.3} single-job ms vs floor {floor_w:.3} (max allowed {max:.3})",
                    );
                    if fresh_w > max {
                        eprintln!(
                            "bench-check FAILED: {fresh_w:.3} > {max:.3} (floor {floor_w:.3} * ratio {ratio})",
                        );
                        return ExitCode::FAILURE;
                    }
                }
                _ => println!("bench-check: {wall} absent from a report, gate skipped"),
            }
            // Reactor-frontend gates, both skip-if-absent so floor files
            // that predate the conn-scale bench keep working: accept
            // throughput must not collapse, and the idle resident set
            // with the ~5k-connection herd parked must not blow up (a
            // per-connection memory regression shows up here long before
            // anything else notices). Both use the same wide ratio — the
            // herd size can differ slightly between environments.
            let aps = "accepted_per_sec";
            match (json_number_field(&fresh, aps), json_number_field(&floor, aps)) {
                (Some(fresh_a), Some(floor_a)) => {
                    let min = floor_a / ratio.max(1.0);
                    println!(
                        "bench-check: fresh {fresh_a:.3} accepted/s vs floor {floor_a:.3} (min allowed {min:.3})",
                    );
                    if fresh_a < min {
                        eprintln!(
                            "bench-check FAILED: {fresh_a:.3} < {min:.3} (floor {floor_a:.3} / ratio {ratio})",
                        );
                        return ExitCode::FAILURE;
                    }
                }
                _ => println!("bench-check: {aps} absent from a report, gate skipped"),
            }
            // Router-relay gate (lower bound, skip-if-absent): routed
            // throughput through the 2-backend loopback tier must not
            // collapse relative to the recorded floor.
            let relay = "route_relay_jobs_per_sec";
            match (json_number_field(&fresh, relay), json_number_field(&floor, relay)) {
                (Some(fresh_j), Some(floor_j)) => {
                    let min = floor_j / ratio.max(1.0);
                    println!(
                        "bench-check: fresh {fresh_j:.3} routed jobs/s vs floor {floor_j:.3} (min allowed {min:.3})",
                    );
                    if fresh_j < min {
                        eprintln!(
                            "bench-check FAILED: {fresh_j:.3} < {min:.3} (floor {floor_j:.3} / ratio {ratio})",
                        );
                        return ExitCode::FAILURE;
                    }
                }
                _ => println!("bench-check: {relay} absent from a report, gate skipped"),
            }
            let rss = "c5k_idle_rss_bytes";
            match (json_number_field(&fresh, rss), json_number_field(&floor, rss)) {
                (Some(fresh_r), Some(floor_r)) => {
                    let max = floor_r * ratio.max(1.0);
                    println!(
                        "bench-check: fresh {:.1} MiB idle RSS vs floor {:.1} MiB (max allowed {:.1})",
                        fresh_r / (1u64 << 20) as f64,
                        floor_r / (1u64 << 20) as f64,
                        max / (1u64 << 20) as f64,
                    );
                    if fresh_r > max {
                        eprintln!(
                            "bench-check FAILED: {fresh_r:.0} > {max:.0} bytes (floor {floor_r:.0} * ratio {ratio})",
                        );
                        return ExitCode::FAILURE;
                    }
                }
                _ => println!("bench-check: {rss} absent from a report, gate skipped"),
            }
            println!("bench-check OK");
        }
        "evaluate" => {
            let (Some(orig), Some(gen)) = (kv.get("original"), kv.get("generated")) else {
                return usage();
            };
            let (a, b) = match (io::load_tsv(orig), io::load_tsv(gen)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("load failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let s = structure_report(&a, &b);
            println!("structure metrics (Table I, lower = better):");
            for (name, v) in metrics::StructureReport::headers().iter().zip(s.as_row()) {
                println!("  {name:<13} {v:.5}");
            }
            if a.n_attrs() > 0 && b.n_attrs() > 0 {
                let r = attribute_report(&a, &b);
                println!("attribute metrics: JSD={:.5} EMD={:.5}", r.jsd, r.emd);
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}

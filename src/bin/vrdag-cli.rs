//! `vrdag-cli` — command-line interface for the VRDAG reproduction.
//!
//! ```text
//! vrdag-cli synth          --dataset Email --scale 0.08 --seed 42 --out graph.tsv
//! vrdag-cli summarize      --graph graph.tsv
//! vrdag-cli fit            --graph graph.tsv --epochs 12 --model model.vrdg
//! vrdag-cli generate       --model model.vrdg --t 14 --out synthetic.tsv
//! vrdag-cli batch-generate --model model.vrdg --t 14 --jobs 8 --workers 4 --out-dir runs/
//! vrdag-cli evaluate       --original graph.tsv --generated synthetic.tsv
//! ```
//!
//! Graphs use the TSV format of `vrdag_graph::io` (drop in real datasets
//! the same way); models use the binary format of `vrdag::persist`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;
use vrdag_suite::graph::io;
use vrdag_suite::metrics;
use vrdag_suite::prelude::*;

fn parse_kv(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                map.insert(key.to_string(), args[i + 1].clone());
                i += 2;
                continue;
            }
        }
        eprintln!("warning: ignoring argument {:?}", args[i]);
        i += 1;
    }
    map
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: vrdag-cli <synth|summarize|fit|generate|batch-generate|evaluate> [--key value ...]\n\
         \n\
         synth          --dataset <name> [--scale F] [--seed N] --out <graph.tsv>\n\
         summarize      --graph <graph.tsv>\n\
         fit            --graph <graph.tsv> [--epochs N] [--seed N] --model <model.vrdg>\n\
         generate       --model <model.vrdg> --t <T> [--seed N] --out <synthetic.tsv>\n\
         batch-generate --model <model.vrdg> --t <T> [--jobs N] [--workers N] [--seed N]\n\
         \x20              [--repeat R] [--cache-entries N] [--priority P] [--queue-depth N]\n\
         \x20              [--format tsv|bin] --out-dir <dir>   (one file per job, seed-addressed)\n\
         evaluate       --original <graph.tsv> --generated <graph.tsv>"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    let kv = parse_kv(&args[1..]);
    let seed: u64 = kv.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    match cmd.as_str() {
        "synth" => {
            let (Some(name), Some(out)) = (kv.get("dataset"), kv.get("out")) else {
                return usage();
            };
            let scale: f64 = kv.get("scale").and_then(|s| s.parse().ok()).unwrap_or(1.0);
            let Some(spec) = datasets::by_name(name) else {
                eprintln!("unknown dataset {name}; known: Email, Bitcoin, Wiki, Guarantee, Brain, GDELT");
                return ExitCode::FAILURE;
            };
            let g = datasets::generate(&spec.scaled(scale), seed);
            if let Err(e) = io::save_tsv(&g, out) {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out}: N={} M={} F={} T={}", g.n_nodes(), g.temporal_edge_count(), g.n_attrs(), g.t_len());
        }
        "summarize" => {
            let Some(path) = kv.get("graph") else { return usage() };
            match io::load_tsv(path) {
                Ok(g) => println!("{}", metrics::summarize(&g).render()),
                Err(e) => {
                    eprintln!("load failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "fit" => {
            let (Some(graph_path), Some(model_path)) = (kv.get("graph"), kv.get("model")) else {
                return usage();
            };
            let g = match io::load_tsv(graph_path) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("load failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let epochs: usize = kv.get("epochs").and_then(|s| s.parse().ok()).unwrap_or(12);
            let cfg = VrdagConfig { epochs, seed, ..VrdagConfig::default() };
            let mut model = Vrdag::new(cfg);
            let mut rng = StdRng::seed_from_u64(seed);
            match model.fit(&g, &mut rng) {
                Ok(report) => println!(
                    "trained in {:.2}s over {} epochs; final loss {:.4}",
                    report.train_seconds, report.epochs, report.final_loss
                ),
                Err(e) => {
                    eprintln!("fit failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Err(e) = model.save(model_path) {
                eprintln!("save failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {model_path}");
        }
        "generate" => {
            let (Some(model_path), Some(out)) = (kv.get("model"), kv.get("out")) else {
                return usage();
            };
            let Some(t): Option<usize> = kv.get("t").and_then(|s| s.parse().ok()) else {
                eprintln!("--t <snapshots> is required");
                return ExitCode::FAILURE;
            };
            if t == 0 {
                eprintln!("--t must be >= 1 (a dynamic graph needs at least one snapshot)");
                return ExitCode::FAILURE;
            }
            let model = match Vrdag::load(model_path) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("model load failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let g = match model.generate(t, &mut rng) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("generation failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = io::save_tsv(&g, out) {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out}: M={} temporal edges", g.temporal_edge_count());
        }
        "batch-generate" => {
            // Serving-layer batch: load the model once into the registry,
            // fan T-snapshot generation jobs (seeds seed..seed+jobs) over
            // a worker pool, stream every sequence straight to disk.
            // `--repeat R` resubmits the whole seed range R more times
            // with discarded output (two rounds writing one path would
            // race) — combined with `--cache-entries N` the later rounds
            // are served from the snapshot LRU instead of regenerating.
            let (Some(model_path), Some(out_dir)) = (kv.get("model"), kv.get("out-dir")) else {
                return usage();
            };
            let Some(t): Option<usize> = kv.get("t").and_then(|s| s.parse().ok()) else {
                eprintln!("--t <snapshots> is required");
                return ExitCode::FAILURE;
            };
            if t == 0 {
                eprintln!("--t must be >= 1 (a dynamic graph needs at least one snapshot)");
                return ExitCode::FAILURE;
            }
            let jobs: usize = kv.get("jobs").and_then(|s| s.parse().ok()).unwrap_or(4);
            let workers: usize = kv.get("workers").and_then(|s| s.parse().ok()).unwrap_or(2);
            let repeat: usize = kv.get("repeat").and_then(|s| s.parse().ok()).unwrap_or(1);
            let cache_entries: usize =
                kv.get("cache-entries").and_then(|s| s.parse().ok()).unwrap_or(0);
            let priority: i32 = kv.get("priority").and_then(|s| s.parse().ok()).unwrap_or(0);
            let queue_depth: Option<usize> = kv.get("queue-depth").and_then(|s| s.parse().ok());
            let format = kv.get("format").map(String::as_str).unwrap_or("tsv");
            if !matches!(format, "tsv" | "bin") {
                eprintln!("--format must be tsv or bin, got {format:?}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::create_dir_all(out_dir) {
                eprintln!("cannot create {out_dir}: {e}");
                return ExitCode::FAILURE;
            }
            let registry = ModelRegistry::new();
            if let Err(e) = registry.load_file("model", model_path) {
                eprintln!("model load failed: {e}");
                return ExitCode::FAILURE;
            }
            let config = SchedulerConfig {
                workers,
                max_queue_depth: queue_depth,
                cache: CacheBudget::entries(cache_entries),
            };
            let mut scheduler = match Scheduler::with_config(registry, config) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("scheduler construction failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for round in 0..repeat.max(1) {
                for job_seed in (0..jobs as u64).map(|i| seed.wrapping_add(i)) {
                    // Only the first round owns the output files; repeat
                    // rounds exist to exercise the cache and must not
                    // write paths another in-flight job may hold open.
                    // (submit consumes the sink, so build one per try.)
                    let make_sink = || {
                        if round > 0 {
                            return GenSink::Discard;
                        }
                        let ext = if format == "tsv" { "tsv" } else { "vdag" };
                        let path =
                            std::path::Path::new(out_dir).join(format!("gen-{job_seed}.{ext}"));
                        if format == "tsv" {
                            GenSink::TsvFile(path)
                        } else {
                            GenSink::BinaryFile(path)
                        }
                    };
                    loop {
                        let req = GenRequest::new("model", t, job_seed, make_sink())
                            .with_priority(priority);
                        match scheduler.submit(req) {
                            Ok(_) => break,
                            Err(ServeError::QueueFull { .. }) => {
                                // QueueFull is our own backpressure on
                                // our own finite batch — wait for the
                                // workers to drain a slot and retry,
                                // instead of aborting with partial
                                // output.
                                std::thread::sleep(std::time::Duration::from_millis(2));
                            }
                            Err(e) => {
                                eprintln!("submit failed: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                }
            }
            let report = match scheduler.join() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("join failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print!("{}", report.render());
            if !report.all_ok() {
                return ExitCode::FAILURE;
            }
        }
        "evaluate" => {
            let (Some(orig), Some(gen)) = (kv.get("original"), kv.get("generated")) else {
                return usage();
            };
            let (a, b) = match (io::load_tsv(orig), io::load_tsv(gen)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("load failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let s = structure_report(&a, &b);
            println!("structure metrics (Table I, lower = better):");
            for (name, v) in metrics::StructureReport::headers().iter().zip(s.as_row()) {
                println!("  {name:<13} {v:.5}");
            }
            if a.n_attrs() > 0 && b.n_attrs() > 0 {
                let r = attribute_report(&a, &b);
                println!("attribute metrics: JSD={:.5} EMD={:.5}", r.jsd, r.emd);
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}

//! # vrdag-suite
//!
//! Workspace facade crate: re-exports the public API of every crate in the
//! VRDAG reproduction (*Efficient Dynamic Attributed Graph Generation*,
//! ICDE 2025) and hosts the cross-crate integration tests (`tests/`) and
//! runnable examples (`examples/`).
//!
//! ```
//! use vrdag_suite::prelude::*;
//! use rand::SeedableRng;
//!
//! // Generate a small synthetic dynamic attributed graph and fit VRDAG.
//! let graph = datasets::generate(&datasets::tiny(), 1);
//! let mut model = Vrdag::new(VrdagConfig::test_small());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! model.fit(&graph, &mut rng).unwrap();
//! let synthetic = model.generate(graph.t_len(), &mut rng).unwrap();
//! assert_eq!(synthetic.n_nodes(), graph.n_nodes());
//! ```

pub use vrdag;
pub use vrdag_baselines as baselines;
pub use vrdag_datasets as datasets;
pub use vrdag_downstream as downstream;
pub use vrdag_graph as graph;
pub use vrdag_metrics as metrics;
pub use vrdag_obs as obs;
pub use vrdag_serve as serve;
pub use vrdag_tensor as tensor;

/// Everything a typical user needs, flat.
pub mod prelude {
    pub use vrdag::{AttrLoss, GenerationState, Vrdag, VrdagConfig};
    pub use vrdag_datasets as datasets;
    pub use vrdag_graph::{
        DynamicGraph, DynamicGraphGenerator, FitReport, GeneratorError, Snapshot,
    };
    pub use vrdag_metrics::{attribute_report, structure_report};
    pub use vrdag_obs::{JobTrace, Level, Logger, Registry as MetricsRegistry};
    pub use vrdag_serve::{
        BatchReport, CacheBudget, CacheStats, CancelToken, Frontend, FrontendConfig, GenRequest,
        GenSink, HttpEndpoints, HttpExpo, LineClient, ModelRegistry, PollerBackend, Router,
        RouterConfig, Scheduler, SchedulerConfig, ServeConfig, ServeError, ServeHandle, ServeStats,
        SnapshotCache, SnapshotStream, Tenant, TenantId, TenantRegistry, TenantStats, Ticket,
    };
    pub use vrdag_tensor::{Matrix, Tensor};
}

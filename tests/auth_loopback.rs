//! Authenticated loopback tests: the tenant subsystem exercised end to
//! end over live TCP — the mandatory `AUTH` greeting, token
//! verification (wrong tokens never reach the scheduler), weighted-fair
//! scheduling across tenants, and per-tenant quota backpressure that
//! leaves other tenants' connections fully usable.
//!
//! The tenant set is loaded from the `tests/fixtures/tenants.conf`
//! fixture (the same file format `vrdag-cli serve --tenants` takes), so
//! the config-file path is covered on every run. Auth-*off* behavior is
//! covered by `tests/loopback.rs`, which runs the whole pre-tenant
//! suite against a default (anonymous-only) registry unchanged.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag_suite::prelude::*;
use vrdag_suite::serve::protocol::{ErrorCode, GenSpec, ReplyHeader, Request, WireFormat};
use vrdag_suite::serve::FrontendConfig;

fn fitted_model(seed: u64) -> Vrdag {
    let g = datasets::generate(&datasets::tiny(), seed);
    let mut cfg = VrdagConfig::test_small();
    cfg.epochs = 2;
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    model.fit(&g, &mut rng).unwrap();
    model
}

/// The fixture registry every test here authenticates against.
fn fixture_tenants() -> TenantRegistry {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/tenants.conf");
    let registry = TenantRegistry::from_file(path).expect("fixture parses");
    assert!(registry.auth_enabled(), "fixture must enable auth");
    registry
}

/// An auth-enabled service + frontend over one registered model.
fn auth_frontend(
    model_seed: u64,
    workers: usize,
    cache: CacheBudget,
) -> (ServeHandle, Frontend, ModelRegistry) {
    let model = fitted_model(model_seed);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let handle = ServeHandle::with_config(
        registry.clone(),
        ServeConfig { workers, cache, tenants: fixture_tenants(), ..Default::default() },
    )
    .unwrap();
    let frontend = Frontend::bind_with(
        handle.clone(),
        "127.0.0.1:0",
        FrontendConfig { max_inflight_per_conn: 64, ..Default::default() },
    )
    .unwrap();
    (handle, frontend, registry)
}

/// Deterministic worker blocker submitted through the core handle (the
/// in-process path needs no wire auth), so wire traffic queues up
/// behind it predictably.
fn pin_worker(handle: &ServeHandle) -> (Ticket, std::sync::mpsc::Sender<()>) {
    let (started_tx, started_rx) = std::sync::mpsc::channel();
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let mut fired = false;
    let ticket = handle
        .submit(GenRequest::new(
            "m",
            1,
            0,
            GenSink::Callback(Box::new(move |_, _| {
                if !fired {
                    fired = true;
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                }
            })),
        ))
        .unwrap();
    started_rx.recv().unwrap();
    (ticket, release_tx)
}

#[test]
fn unauthenticated_commands_are_rejected_and_the_connection_closed() {
    let (handle, frontend, _) = auth_frontend(31, 1, CacheBudget::disabled());
    // A command (not AUTH) as the first line: ERR auth-required, close.
    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();
    let reply = conn.request(&Request::Ping { tag: None }).unwrap();
    match reply.header {
        ReplyHeader::Err { code, .. } => assert_eq!(code, ErrorCode::AuthRequired),
        other => panic!("expected ERR auth-required, got {other:?}"),
    }
    assert!(conn.read_frame().is_err(), "connection must be closed after the rejection");

    // Same for a GEN — and it must never reach the scheduler.
    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();
    let reply = conn.gen(GenSpec::new("m", 2, 1, WireFormat::Tsv)).unwrap();
    match reply.header {
        ReplyHeader::Err { code, .. } => assert_eq!(code, ErrorCode::AuthRequired),
        other => panic!("expected ERR auth-required, got {other:?}"),
    }
    assert!(conn.read_frame().is_err());

    // Malformed first lines are auth-required too (nothing probes the
    // parser surface unauthenticated).
    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();
    let reply = conn.send_line("FROBNICATE now").unwrap();
    match reply.header {
        ReplyHeader::Err { code, .. } => assert_eq!(code, ErrorCode::AuthRequired),
        other => panic!("expected ERR auth-required, got {other:?}"),
    }
    assert!(conn.read_frame().is_err());

    let stats = handle.stats();
    assert_eq!(stats.submitted, 0, "unauthenticated work reached the queue: {stats:?}");
}

#[test]
fn wrong_tokens_fail_closed_and_never_reach_the_queue() {
    let (handle, frontend, _) = auth_frontend(32, 1, CacheBudget::disabled());
    // Wrong token: ERR auth-failed, connection closed.
    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();
    let reply = conn.auth("tok-gold-fixture-but-wrong").unwrap();
    match reply.header {
        ReplyHeader::Err { code, .. } => assert_eq!(code, ErrorCode::AuthFailed),
        other => panic!("expected ERR auth-failed, got {other:?}"),
    }
    assert!(conn.read_frame().is_err(), "connection must be closed after auth-failed");

    // A pipelined bad-AUTH + GEN burst: the GEN behind the failed auth
    // must die with the connection, not execute.
    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();
    conn.send(&Request::Auth { token: "nope".to_string(), tag: None }).unwrap();
    conn.send(&Request::Gen(GenSpec::new("m", 2, 7, WireFormat::Tsv))).unwrap();
    let reply = conn.read_frame().unwrap();
    assert!(
        matches!(reply.header, ReplyHeader::Err { code: ErrorCode::AuthFailed, .. }),
        "{:?}",
        reply.header
    );
    assert!(conn.read_frame().is_err());

    let stats = handle.stats();
    assert_eq!(stats.submitted, 0, "a wrong token let work into the queue: {stats:?}");
}

#[test]
fn valid_tokens_bind_the_tenant_and_serve_bit_identical_replies() {
    let (handle, frontend, registry) = auth_frontend(33, 1, CacheBudget::disabled());
    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();
    let reply = conn.auth("tok-gold-fixture").unwrap();
    match &reply.header {
        ReplyHeader::Auth { tenant, tag: None } => assert_eq!(tenant, "gold"),
        other => panic!("expected OK AUTH tenant=gold, got {other:?}"),
    }
    // Authenticated traffic is the same protocol as before.
    let reply = conn.gen(GenSpec::new("m", 3, 5, WireFormat::Tsv)).unwrap();
    let payload = match &reply.header {
        ReplyHeader::Gen { snapshots, .. } => {
            assert_eq!(*snapshots, 3);
            reply.payload.clone()
        }
        other => panic!("expected OK GEN, got {other:?}"),
    };
    // Bit-identical to the direct in-process path.
    let direct = ServeHandle::new(registry, 1).unwrap();
    let result =
        direct.submit(GenRequest::new("m", 3, 5, GenSink::InMemory)).unwrap().wait().unwrap();
    let expected =
        vrdag_suite::graph::io::write_tsv(result.graph.as_deref().unwrap(), Vec::new()).unwrap();
    assert_eq!(payload, expected, "authenticated wire reply diverged from the direct path");

    // A second AUTH on the same connection is rejected but not fatal.
    let reply = conn.auth("tok-bronze-fixture").unwrap();
    assert!(
        matches!(reply.header, ReplyHeader::Err { code: ErrorCode::BadRequest, .. }),
        "{:?}",
        reply.header
    );
    let pong = conn.request(&Request::Ping { tag: None }).unwrap();
    assert!(matches!(pong.header, ReplyHeader::Pong { .. }));

    // The traffic is attributed to the gold tenant in the stats.
    let stats = handle.stats();
    let gold = stats.tenants.iter().find(|t| t.id == "gold").expect("gold row");
    assert_eq!(gold.submitted, 1);
    assert_eq!(gold.completed, 1);
    assert_eq!(gold.weight, 3);
    assert!(gold.bytes_streamed > 0);
}

#[test]
fn weighted_fair_scheduling_over_the_wire_approximates_3_to_1() {
    // Weights gold:bronze = 3:1 (from the fixture). One worker, cache
    // off, identical job mixes pipelined from two authenticated
    // connections while the worker is pinned — then, mid-drain, the
    // per-tenant completion counts must sit near the 3:1 weight ratio.
    let (handle, frontend, _) = auth_frontend(34, 1, CacheBudget::disabled());
    let (blocker, release) = pin_worker(&handle);

    let per_tenant = 32usize;
    let mut conns = Vec::new();
    for (token, tenant) in [("tok-gold-fixture", "gold"), ("tok-bronze-fixture", "bronze")] {
        let mut conn = LineClient::connect(frontend.local_addr()).unwrap();
        match conn.auth(token).unwrap().header {
            ReplyHeader::Auth { tenant: t, .. } => assert_eq!(t, tenant),
            other => panic!("auth failed: {other:?}"),
        }
        for i in 0..per_tenant {
            conn.send(&Request::Gen(
                GenSpec::new("m", 4, 1000 + i as u64, WireFormat::Tsv).with_tag(format!("j{i}")),
            ))
            .unwrap();
        }
        conns.push(conn);
    }
    // Wait until both tenants' jobs are queued, then unpin.
    while handle.queue_depth() < 2 * per_tenant {
        std::thread::yield_now();
    }
    release.send(()).unwrap();
    blocker.wait().unwrap();

    // Sample the per-tenant split mid-drain (while both lanes still
    // hold work): with weights 3:1 the gold fraction must be ~0.75.
    let sample_at = 16u64; // completions past the blocker
    let (gold_done, bronze_done) = loop {
        let stats = handle.stats();
        if stats.completed > sample_at {
            let row =
                |id: &str| stats.tenants.iter().find(|t| t.id == id).map_or(0, |t| t.completed);
            break (row("gold"), row("bronze"));
        }
        std::thread::sleep(std::time::Duration::from_micros(300));
    };
    let frac = gold_done as f64 / (gold_done + bronze_done).max(1) as f64;
    assert!(
        (0.55..=0.95).contains(&frac),
        "weighted-fair share off: gold={gold_done} bronze={bronze_done} (frac {frac:.2})"
    );

    // Both tenants' full job mixes complete and demux cleanly.
    for conn in &mut conns {
        for _ in 0..per_tenant {
            let reply = conn.read_frame().unwrap();
            assert!(matches!(reply.header, ReplyHeader::Gen { .. }), "{:?}", reply.header);
        }
        let bye = conn.request(&Request::Quit { tag: None }).unwrap();
        assert!(matches!(bye.header, ReplyHeader::Bye { .. }));
    }
    let stats = handle.stats();
    let row = |id: &str| stats.tenants.iter().find(|t| t.id == id).unwrap().completed;
    assert_eq!(row("gold") as usize, per_tenant);
    assert_eq!(row("bronze") as usize, per_tenant);
    assert_eq!(stats.failed, 0);
}

#[test]
fn quota_backpressure_is_tenant_scoped_and_leaves_others_usable() {
    // The `capped` fixture tenant holds max_inflight = 2. Its third
    // outstanding wire job is refused with a structured
    // `ERR quota-exceeded tenant=capped …` — while a gold connection
    // keeps submitting and completing untouched.
    let (handle, frontend, _) = auth_frontend(35, 1, CacheBudget::disabled());
    let (blocker, release) = pin_worker(&handle);

    let mut capped = LineClient::connect(frontend.local_addr()).unwrap();
    assert!(matches!(capped.auth("tok-capped-fixture").unwrap().header, ReplyHeader::Auth { .. }));
    capped.send(&Request::Gen(GenSpec::new("m", 1, 1, WireFormat::Tsv).with_tag("c1"))).unwrap();
    capped.send(&Request::Gen(GenSpec::new("m", 1, 2, WireFormat::Tsv).with_tag("c2"))).unwrap();
    let rejected = capped
        .request(&Request::Gen(GenSpec::new("m", 1, 3, WireFormat::Tsv).with_tag("c3")))
        .unwrap();
    match rejected.header {
        ReplyHeader::Err { code, tag, message } => {
            assert_eq!(code, ErrorCode::QuotaExceeded);
            assert_eq!(tag.as_deref(), Some("c3"));
            assert!(message.contains("tenant=capped"), "{message}");
            assert!(message.contains("limit=max_inflight"), "{message}");
            assert!(message.contains("cap=2"), "{message}");
        }
        other => panic!("expected ERR quota-exceeded, got {other:?}"),
    }

    // The other tenant's connection is fully usable through all of it.
    let mut gold = LineClient::connect(frontend.local_addr()).unwrap();
    assert!(matches!(gold.auth("tok-gold-fixture").unwrap().header, ReplyHeader::Auth { .. }));
    let pong = gold.request(&Request::Ping { tag: None }).unwrap();
    assert!(matches!(pong.header, ReplyHeader::Pong { .. }));
    gold.send(&Request::Gen(GenSpec::new("m", 1, 4, WireFormat::Tsv).with_tag("g1"))).unwrap();

    release.send(()).unwrap();
    blocker.wait().unwrap();
    // Everything admitted completes; the capped connection survived its
    // rejection and can retry once a slot frees.
    let mut done: Vec<String> = (0..2)
        .map(|_| {
            let reply = capped.read_frame().unwrap();
            match reply.header {
                ReplyHeader::Gen { tag: Some(t), .. } => t,
                other => panic!("expected OK GEN, got {other:?}"),
            }
        })
        .collect();
    done.sort();
    assert_eq!(done, ["c1", "c2"]);
    let retry = capped
        .request(&Request::Gen(GenSpec::new("m", 1, 5, WireFormat::Tsv).with_tag("c3")))
        .unwrap();
    assert!(matches!(retry.header, ReplyHeader::Gen { .. }), "{:?}", retry.header);
    let reply = gold.read_frame().unwrap();
    assert!(matches!(reply.header, ReplyHeader::Gen { .. }), "{:?}", reply.header);

    let stats = handle.stats();
    let capped_row = stats.tenants.iter().find(|t| t.id == "capped").unwrap();
    assert_eq!(capped_row.rejected, 1);
    assert_eq!(capped_row.completed, 3);
    let gold_row = stats.tenants.iter().find(|t| t.id == "gold").unwrap();
    assert_eq!(gold_row.rejected, 0);
    assert_eq!(gold_row.completed, 1);
}

#[test]
fn auth_is_optional_on_an_auth_off_frontend() {
    // Default registry = anonymous only: no greeting required, and an
    // explicit AUTH is acknowledged as the anonymous tenant.
    let model = fitted_model(36);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let handle = ServeHandle::new(registry, 1).unwrap();
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();
    // No AUTH: commands just work (the entire legacy suite runs this
    // way — see tests/loopback.rs).
    let pong = conn.request(&Request::Ping { tag: None }).unwrap();
    assert!(matches!(pong.header, ReplyHeader::Pong { .. }));
    // AUTH is tolerated and maps to anonymous.
    let reply = conn.auth("whatever").unwrap();
    match &reply.header {
        ReplyHeader::Auth { tenant, .. } => assert_eq!(tenant, "anonymous"),
        other => panic!("expected OK AUTH tenant=anonymous, got {other:?}"),
    }
    let reply = conn.gen(GenSpec::new("m", 2, 1, WireFormat::Tsv)).unwrap();
    assert!(matches!(reply.header, ReplyHeader::Gen { .. }));
}

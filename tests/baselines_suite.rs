//! Cross-crate integration: every baseline generator fits and generates on
//! every (tiny) dataset flavor, through the shared trait object interface
//! the bench harness uses.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag_suite::baselines::{
    DymondConfig, DymondLike, GenCatLike, GranLike, NormalBaseline, TagGenLike, TgganLike,
    TiggerLike,
};
use vrdag_suite::prelude::*;

fn methods() -> Vec<Box<dyn DynamicGraphGenerator>> {
    vec![
        Box::new(TagGenLike::with_defaults()),
        Box::new(TgganLike::with_defaults()),
        Box::new(TiggerLike::with_defaults()),
        Box::new(DymondLike::new(DymondConfig { motif_budget: 5_000_000 })),
        Box::new(GranLike::with_defaults()),
        Box::new(GenCatLike::with_defaults()),
        Box::new(NormalBaseline::new()),
    ]
}

#[test]
fn all_baselines_round_trip_on_tiny_dataset() {
    let graph = datasets::generate(&datasets::tiny(), 17);
    for mut m in methods() {
        let mut rng = StdRng::seed_from_u64(1);
        let name = m.name().to_string();
        m.fit(&graph, &mut rng).unwrap_or_else(|e| panic!("{name} fit: {e}"));
        let out =
            m.generate(graph.t_len(), &mut rng).unwrap_or_else(|e| panic!("{name} generate: {e}"));
        assert_eq!(out.n_nodes(), graph.n_nodes(), "{name}: node count");
        assert_eq!(out.t_len(), graph.t_len(), "{name}: sequence length");
        assert!(out.temporal_edge_count() > 0, "{name}: no edges");
        // Structure metrics must be computable on every output.
        let rep = structure_report(&graph, &out);
        for v in rep.as_row() {
            assert!(v.is_finite(), "{name}: non-finite metric");
        }
    }
}

#[test]
fn all_baselines_error_before_fit() {
    let mut rng = StdRng::seed_from_u64(2);
    for m in methods() {
        assert!(m.generate(2, &mut rng).is_err(), "{} generated without fitting", m.name());
    }
}

#[test]
fn attribute_capable_baselines_fill_attributes() {
    let graph = datasets::generate(&datasets::tiny(), 18);
    for mut m in methods() {
        let mut rng = StdRng::seed_from_u64(3);
        m.fit(&graph, &mut rng).unwrap();
        let out = m.generate(2, &mut rng).unwrap();
        let has_values = out.snapshot(0).attrs().data().iter().any(|&x| x != 0.0);
        assert_eq!(
            has_values,
            m.supports_attributes(),
            "{}: attribute support flag does not match output",
            m.name()
        );
    }
}

#[test]
fn walk_based_methods_are_slower_at_generation_than_vrdag() {
    // The paper's efficiency headline, checked directionally at tiny scale:
    // TagGen generation ≥ VRDAG generation (walk sampling + discrimination
    // + merging vs one-shot decoding).
    let graph = datasets::generate(&datasets::tiny(), 19);
    let mut rng = StdRng::seed_from_u64(4);

    let mut cfg = VrdagConfig::test_small();
    cfg.epochs = 2;
    let mut vr = Vrdag::new(cfg);
    vr.fit(&graph, &mut rng).unwrap();
    let t0 = std::time::Instant::now();
    let _ = vr.generate(graph.t_len(), &mut rng).unwrap();
    let vrdag_time = t0.elapsed();

    let mut tag: Box<dyn DynamicGraphGenerator> = Box::new(TagGenLike::with_defaults());
    tag.fit(&graph, &mut rng).unwrap();
    let t1 = std::time::Instant::now();
    let _ = tag.generate(graph.t_len(), &mut rng).unwrap();
    let tag_time = t1.elapsed();

    // Allow generous slack — this is a directional check, not a benchmark.
    assert!(
        tag_time.as_secs_f64() > vrdag_time.as_secs_f64() * 0.2,
        "unexpected: TagGen {tag_time:?} far faster than VRDAG {vrdag_time:?}"
    );
}

#[test]
fn gencat_tracks_attribute_distribution_better_than_normal_on_classes() {
    // GenCAT models per-class attribute distributions; Normal pools
    // everything. On a community-structured dataset GenCAT's JSD should
    // not be worse by a large factor.
    let graph = datasets::generate(&datasets::tiny(), 20);
    let mut rng = StdRng::seed_from_u64(5);
    let mut gencat: Box<dyn DynamicGraphGenerator> = Box::new(GenCatLike::with_defaults());
    gencat.fit(&graph, &mut rng).unwrap();
    let g_out = gencat.generate(graph.t_len(), &mut rng).unwrap();
    let mut normal: Box<dyn DynamicGraphGenerator> = Box::new(NormalBaseline::new());
    normal.fit(&graph, &mut rng).unwrap();
    let n_out = normal.generate(graph.t_len(), &mut rng).unwrap();
    let g_rep = attribute_report(&graph, &g_out);
    let n_rep = attribute_report(&graph, &n_out);
    assert!(
        g_rep.jsd <= n_rep.jsd * 3.0 + 0.05,
        "GenCAT JSD {} vastly worse than Normal {}",
        g_rep.jsd,
        n_rep.jsd
    );
}

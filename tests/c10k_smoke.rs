//! Connection-scale smoke tests for the reactor frontend: thousands of
//! parked connections with pipelined work completing underneath them, a
//! stalled `SUB` reader that must not block sibling connections, and a
//! ten-thousand-job single-connection run whose resident set must stay
//! flat (the in-flight-table bookkeeping regression test — the old
//! thread-per-waiter design leaks a stack per job here).
//!
//! Every test opens a large share of the process fd budget, so the
//! suite serializes itself behind one mutex and sizes its herd from the
//! soft `RLIMIT_NOFILE` (override with `VRDAG_C10K_CONNS`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use vrdag_suite::prelude::*;
use vrdag_suite::serve::poll_os;
use vrdag_suite::serve::protocol::{EndStatus, GenSpec, ReplyHeader, Request, WireFormat};

/// Each test opens thousands of descriptors — serialize them so two
/// herds never compete for the same fd budget. The lock guards fds, not
/// data, so a poisoned guard from a panicked predecessor is harmless.
static HERD: Mutex<()> = Mutex::new(());

fn herd_lock() -> MutexGuard<'static, ()> {
    HERD.lock().unwrap_or_else(|e| e.into_inner())
}

fn fitted_model(seed: u64) -> Vrdag {
    let g = datasets::generate(&datasets::tiny(), seed);
    let mut cfg = VrdagConfig::test_small();
    cfg.epochs = 2;
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    model.fit(&g, &mut rng).unwrap();
    model
}

fn serve_fixture(workers: usize, cache_entries: usize) -> (ServeHandle, Frontend) {
    let registry = ModelRegistry::new();
    registry.register("m", &fitted_model(11)).unwrap();
    let handle = ServeHandle::with_config(
        registry,
        ServeConfig { workers, cache: CacheBudget::entries(cache_entries), ..Default::default() },
    )
    .unwrap();
    // Uncapped: the herd is sized from the fd budget and may exceed the
    // frontend's 4096-connection default.
    let frontend = Frontend::bind_with(
        handle.clone(),
        "127.0.0.1:0",
        FrontendConfig { max_connections: None, ..Default::default() },
    )
    .unwrap();
    (handle, frontend)
}

/// Ground truth for a `(t, seed)` reply, generated through a direct
/// in-process handle so the frontend under test serves only TCP work.
fn direct_tsv_payload(t_len: usize, seed: u64) -> Vec<u8> {
    let registry = ModelRegistry::new();
    registry.register("m", &fitted_model(11)).unwrap();
    let direct = ServeHandle::new(registry, 1).unwrap();
    let ticket = direct.submit(GenRequest::new("m", t_len, seed, GenSink::InMemory)).unwrap();
    let result = ticket.wait().unwrap();
    assert!(result.is_ok(), "{:?}", result.error);
    let payload =
        vrdag_suite::graph::io::write_tsv(result.graph.as_deref().unwrap(), Vec::new()).unwrap();
    direct.shutdown();
    payload
}

/// How many connections the environment can host: half the fd budget
/// (one server fd per client fd) minus slack for the process's own
/// files, capped at 5000. `VRDAG_C10K_CONNS` overrides the computed
/// size on machines where the heuristic is wrong.
fn herd_size() -> usize {
    if let Some(n) = std::env::var("VRDAG_C10K_CONNS").ok().and_then(|v| v.parse().ok()) {
        return n;
    }
    let budget = poll_os::raise_nofile_limit().unwrap_or(1024);
    (budget.saturating_sub(512) / 2).min(5_000) as usize
}

/// Extract one sample value from Prometheus exposition text. `series`
/// must be the full series name; the ` ` separator keeps `foo` from
/// matching `foo_peak`.
fn prom_sample(text: &str, series: &str) -> Option<u64> {
    text.lines().find_map(|line| line.strip_prefix(series)?.strip_prefix(' ')?.parse().ok())
}

/// The C10K claim itself: park thousands of idle connections, and while
/// they sit there (a) pipelined tagged GEN + SUB work on active
/// connections still completes bit-identically, (b) idle connections
/// still answer PING, and (c) the reactor gauges agree with the herd.
#[test]
fn thousands_of_idle_connections_while_tagged_work_completes() {
    let _guard = herd_lock();
    let target = herd_size();
    if target < 512 {
        eprintln!("c10k smoke skipped: fd budget allows only {target} connections");
        return;
    }
    let expected = direct_tsv_payload(3, 5);
    let (handle, frontend) = serve_fixture(2, 8);
    let addr = frontend.local_addr();

    // Park the idle herd from 8 opener threads; each holds its share of
    // sockets until released. 16 of the herd stay on this thread as
    // LineClients so we can PING through the parked mass later.
    const SAMPLERS: usize = 16;
    const ACTIVE: usize = 32;
    let idle_target = target - SAMPLERS - ACTIVE;
    let release = Arc::new(AtomicBool::new(false));
    let openers: Vec<_> = (0..8)
        .map(|i| {
            let release = Arc::clone(&release);
            let share = idle_target / 8 + usize::from(i < idle_target % 8);
            std::thread::spawn(move || {
                let conns: Vec<_> =
                    (0..share).map(|_| TcpStream::connect(addr).expect("connect")).collect();
                while !release.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(10));
                }
                drop(conns);
            })
        })
        .collect();
    let mut samplers: Vec<_> =
        (0..SAMPLERS).map(|_| LineClient::connect(addr).expect("sampler connect")).collect();

    // Wait for the whole herd to be accepted *and registered* (the
    // open-connections gauge counts reactor registrations, not kernel
    // accepts).
    let deadline = Instant::now() + Duration::from_secs(120);
    while frontend.open_connections() < idle_target + SAMPLERS && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        frontend.open_connections() >= idle_target + SAMPLERS,
        "herd never landed: {} of {} connections open",
        frontend.open_connections(),
        idle_target + SAMPLERS,
    );

    // Active work *through* the parked herd: each client pipelines a
    // tagged GEN and a SUB for the same key, then demuxes. The stream's
    // concatenated EVT payloads and the buffered GEN payload must both
    // equal the direct in-process result, byte for byte.
    let workers: Vec<_> = (0..ACTIVE)
        .map(|i| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = LineClient::connect(addr).expect("active connect");
                let gen_tag = format!("g{i}");
                let sub_tag = format!("s{i}");
                client
                    .send(&Request::Gen(
                        GenSpec::new("m", 3, 5, WireFormat::Tsv).with_tag(&gen_tag),
                    ))
                    .unwrap();
                client
                    .send(&Request::Sub(
                        GenSpec::new("m", 3, 5, WireFormat::Tsv).with_tag(&sub_tag),
                    ))
                    .unwrap();
                let mut gen_payload = None;
                let mut stream = Vec::new();
                let mut done = false;
                while !(done && gen_payload.is_some()) {
                    let reply = client.read_frame().unwrap();
                    match reply.header {
                        ReplyHeader::Gen { ref tag, .. } => {
                            assert_eq!(tag.as_deref(), Some(gen_tag.as_str()));
                            gen_payload = Some(reply.payload);
                        }
                        ReplyHeader::Sub { ref tag, .. } => assert_eq!(tag, &sub_tag),
                        ReplyHeader::Evt { ref tag, .. } => {
                            assert_eq!(tag, &sub_tag);
                            stream.extend_from_slice(&reply.payload);
                        }
                        ReplyHeader::End { ref tag, status, snapshots, .. } => {
                            assert_eq!(tag, &sub_tag);
                            assert_eq!(status, EndStatus::Ok);
                            assert_eq!(snapshots, 3);
                            done = true;
                        }
                        other => panic!("unexpected frame: {other:?}"),
                    }
                }
                assert_eq!(gen_payload.unwrap(), expected, "GEN payload diverged under load");
                assert_eq!(stream, expected, "SUB stream diverged under load");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("active client panicked");
    }

    // The parked mass is still live: every sampler answers PING.
    for client in &mut samplers {
        let reply = client.request(&Request::Ping { tag: None }).unwrap();
        assert!(matches!(reply.header, ReplyHeader::Pong { .. }), "{:?}", reply.header);
    }

    // Reactor observability agrees with the herd.
    let text = handle.metrics_text();
    let open = prom_sample(&text, "vrdag_open_connections").unwrap_or(0);
    assert!(
        open as usize >= idle_target + SAMPLERS,
        "vrdag_open_connections gauge reads {open}, herd is {}",
        idle_target + SAMPLERS,
    );
    assert!(
        prom_sample(&text, "vrdag_reactor_wakeups_total").unwrap_or(0) > 0,
        "reactor wakeup counter never moved:\n{text}",
    );

    release.store(true, Ordering::Release);
    for t in openers {
        t.join().expect("opener panicked");
    }
    drop(samplers);
    drop(frontend);
    handle.shutdown();
}

/// A subscriber that stops reading mid-stream must not stall other
/// connections: with the reader parked, a sibling connection's
/// sequential GENs still complete (on the old thread-per-connection
/// frontend this held trivially; on a shared event loop it is the
/// property that keeps one slow consumer from freezing the server).
/// When the slow reader finally resumes, its stream finishes intact.
#[test]
fn stalled_subscriber_does_not_block_sibling_connections() {
    let _guard = herd_lock();
    let (handle, frontend) = serve_fixture(2, 8);
    let addr = frontend.local_addr();
    let expected_slow = direct_tsv_payload(40, 9);
    let expected_fast = direct_tsv_payload(3, 5);

    // Slow reader: subscribe to a 40-snapshot stream, read the ack and
    // two EVT frames, then go silent with the rest in flight.
    let mut slow = LineClient::connect(addr).unwrap();
    slow.send(&Request::Sub(GenSpec::new("m", 40, 9, WireFormat::Tsv).with_tag("slow"))).unwrap();
    let ack = slow.read_frame().unwrap();
    assert!(matches!(ack.header, ReplyHeader::Sub { .. }), "{:?}", ack.header);
    let mut stream = Vec::new();
    for _ in 0..2 {
        let evt = slow.read_frame().unwrap();
        assert!(matches!(evt.header, ReplyHeader::Evt { .. }), "{:?}", evt.header);
        stream.extend_from_slice(&evt.payload);
    }

    // Sibling connection: eight lock-step GENs while the slow stream is
    // stalled. If the stalled consumer froze the event loop or pinned
    // every worker, this loop would hang and time the test out.
    let mut fast = LineClient::connect(addr).unwrap();
    for _ in 0..8 {
        let reply = fast.gen(GenSpec::new("m", 3, 5, WireFormat::Tsv)).unwrap();
        assert!(matches!(reply.header, ReplyHeader::Gen { .. }), "{:?}", reply.header);
        assert_eq!(reply.payload, expected_fast);
    }

    // Resume the slow reader: the remainder of the stream arrives and
    // reassembles byte-identically.
    loop {
        let reply = slow.read_frame().unwrap();
        match reply.header {
            ReplyHeader::Evt { .. } => stream.extend_from_slice(&reply.payload),
            ReplyHeader::End { status, snapshots, .. } => {
                assert_eq!(status, EndStatus::Ok);
                assert_eq!(snapshots, 40);
                break;
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    assert_eq!(stream, expected_slow, "stalled stream reassembled differently");

    drop(frontend);
    handle.shutdown();
}

/// Ten thousand sequential jobs over one connection must not grow the
/// process: per-job state (in-flight table entry, completion hook,
/// outbox frame) is reclaimed as each reply drains. The thread-per-
/// waiter design this replaced allocated a stack per job and failed
/// this bound by two orders of magnitude.
#[test]
fn ten_thousand_sequential_jobs_keep_rss_bounded() {
    let _guard = herd_lock();
    let (handle, frontend) = serve_fixture(1, 4);
    let mut client = LineClient::connect(frontend.local_addr()).unwrap();
    let expected = direct_tsv_payload(3, 7);

    // Warm-up: first request generates and fills the snapshot cache;
    // everything after is a cache-hit round trip. Sample RSS only after
    // lazy allocations (thread-local model instantiation, cache entry,
    // buffer pools) have happened.
    for _ in 0..100 {
        let reply = client.gen(GenSpec::new("m", 3, 7, WireFormat::Tsv)).unwrap();
        assert!(matches!(reply.header, ReplyHeader::Gen { .. }), "{:?}", reply.header);
    }
    let before = poll_os::current_rss_bytes();

    for i in 0..10_000u32 {
        let reply = client.gen(GenSpec::new("m", 3, 7, WireFormat::Tsv)).unwrap();
        assert!(matches!(reply.header, ReplyHeader::Gen { .. }), "{:?}", reply.header);
        if i % 2_500 == 0 {
            assert_eq!(reply.payload, expected, "payload drifted at job {i}");
        }
    }

    match (before, poll_os::current_rss_bytes()) {
        (Some(b), Some(a)) => {
            let grown = a.saturating_sub(b);
            assert!(
                grown < 16 << 20,
                "RSS grew {grown} bytes over 10k jobs ({b} -> {a}): per-job state is leaking",
            );
        }
        _ => eprintln!("RSS bound skipped: /proc/self/statm unavailable"),
    }

    drop(client);
    drop(frontend);
    handle.shutdown();
}

//! The determinism contract the snapshot cache relies on, property-style:
//! a `(model, t_len, seed)` triple always yields the same sequence, so a
//! cache hit must be **bit-identical** to cold generation, and eviction
//! (which silently turns hits back into regeneration) must never change
//! any result.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use vrdag_suite::prelude::*;

/// One fitted model, shared across cases (fitting dominates test time and
/// the properties quantify over seeds/t_lens, not over models). Stored as
/// serialized bytes — exactly what the registry holds.
fn model_bytes() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let g = datasets::generate(&datasets::tiny(), 11);
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 2;
        let mut model = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(11);
        model.fit(&g, &mut rng).unwrap();
        model.to_bytes().unwrap()
    })
}

fn cold_generation(t_len: usize, seed: u64) -> DynamicGraph {
    let model = Vrdag::from_bytes(model_bytes()).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    model.generate(t_len, &mut rng).unwrap()
}

fn cached_scheduler(cache: CacheBudget) -> Scheduler {
    let registry = ModelRegistry::new();
    registry.register_bytes("m", model_bytes().clone()).unwrap();
    // One worker so hit/miss accounting is deterministic.
    Scheduler::with_config(registry, SchedulerConfig { workers: 1, cache, ..Default::default() })
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Submitting every request twice: the second pass is served from the
    /// cache and must be bit-identical to both the first pass and a cold
    /// `model.generate` with the same seed.
    #[test]
    fn cache_hits_are_bit_identical_to_cold_generation(
        seeds in prop::collection::vec(0u64..1_000, 1..4),
        t_len in 1usize..4,
    ) {
        let mut scheduler = cached_scheduler(CacheBudget::entries(32));
        for _pass in 0..2 {
            for &seed in &seeds {
                scheduler
                    .submit(GenRequest::new("m", t_len, seed, GenSink::InMemory))
                    .unwrap();
            }
        }
        let report = scheduler.join().unwrap();
        prop_assert!(report.all_ok(), "{}", report.render());
        // Distinct seeds miss once and hit on the second pass.
        let distinct = {
            let mut s = seeds.clone();
            s.sort_unstable();
            s.dedup();
            s.len()
        };
        prop_assert_eq!(report.cache.misses as usize, distinct);
        prop_assert_eq!(
            report.cache.hits as usize,
            2 * seeds.len() - distinct,
            "{}",
            report.render()
        );
        for job in &report.jobs {
            let cold = cold_generation(t_len, job.seed);
            prop_assert_eq!(job.graph.as_deref().unwrap(), &cold, "seed {}", job.seed);
            prop_assert_eq!(job.snapshots, t_len);
            prop_assert_eq!(job.edges, cold.temporal_edge_count());
        }
    }

    /// A cache too small for the working set churns constantly; every
    /// result must still equal cold generation, and the occupancy must
    /// respect the budget.
    #[test]
    fn eviction_never_changes_results(
        t_len in 1usize..4,
        rounds in 2usize..4,
    ) {
        // 6 distinct keys cycling through a 2-entry cache: every round
        // after the first would be all hits without eviction, but the
        // LRU can only keep 2, so most requests regenerate.
        let mut scheduler = cached_scheduler(CacheBudget::entries(2));
        for _round in 0..rounds {
            for seed in 0..6u64 {
                scheduler
                    .submit(GenRequest::new("m", t_len, seed, GenSink::InMemory))
                    .unwrap();
            }
        }
        let report = scheduler.join().unwrap();
        prop_assert!(report.all_ok(), "{}", report.render());
        prop_assert!(report.cache.evictions > 0, "cache never churned: {:?}", report.cache);
        prop_assert!(report.cache.entries <= 2);
        for job in &report.jobs {
            let cold = cold_generation(t_len, job.seed);
            prop_assert_eq!(job.graph.as_deref().unwrap(), &cold, "seed {}", job.seed);
        }
    }
}

/// The same seed served three ways — cold one-shot, cache miss, cache
/// hit — plus a spill through a file sink on a hit: all four byte paths
/// agree.
#[test]
fn miss_hit_and_file_replay_agree() {
    let dir = std::env::temp_dir().join("vrdag_cache_determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let mut scheduler = cached_scheduler(CacheBudget::entries(4));
    scheduler.submit(GenRequest::new("m", 3, 77, GenSink::InMemory)).unwrap();
    scheduler.submit(GenRequest::new("m", 3, 77, GenSink::InMemory)).unwrap();
    let path = dir.join("hit.tsv");
    scheduler.submit(GenRequest::new("m", 3, 77, GenSink::TsvFile(path.clone()))).unwrap();
    let report = scheduler.join().unwrap();
    assert!(report.all_ok(), "{}", report.render());
    assert_eq!(report.cache_hits(), 2, "{}", report.render());

    let cold = cold_generation(3, 77);
    for job in report.jobs.iter().filter(|j| j.graph.is_some()) {
        assert_eq!(job.graph.as_deref().unwrap(), &cold);
    }
    let replayed = vrdag_suite::graph::io::load_tsv(&path).unwrap();
    assert_eq!(replayed, cold, "file replay of a cache hit matches cold generation");
}

/// Disabling the cache must leave results untouched (pure pass-through).
#[test]
fn disabled_cache_is_pass_through() {
    let mut scheduler = cached_scheduler(CacheBudget::disabled());
    for seed in [5u64, 5, 9] {
        scheduler.submit(GenRequest::new("m", 2, seed, GenSink::InMemory)).unwrap();
    }
    let report = scheduler.join().unwrap();
    assert!(report.all_ok(), "{}", report.render());
    assert_eq!(report.cache.hits + report.cache.misses, 0, "no lookups when disabled");
    for job in &report.jobs {
        assert_eq!(job.graph.as_deref().unwrap(), &cold_generation(2, job.seed));
        assert!(!job.cache_hit);
    }
}

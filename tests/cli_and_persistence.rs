//! Integration: the persistence + TSV round-trip workflow the CLI exposes
//! (train → save → load → generate → evaluate), plus the §III-H churn
//! generation path and the graph summary statistics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag_suite::graph::io;
use vrdag_suite::metrics;
use vrdag_suite::prelude::*;
use vrdag_suite::vrdag::extension::ChurnConfig;

fn work_dir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join("vrdag_cli_it");
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn full_offline_workflow() {
    let dir = work_dir();
    // synth
    let g = datasets::generate(&datasets::tiny(), 77);
    let graph_path = dir.join("observed.tsv");
    io::save_tsv(&g, &graph_path).unwrap();

    // fit + save
    let loaded = io::load_tsv(&graph_path).unwrap();
    assert_eq!(loaded, g);
    let mut cfg = VrdagConfig::test_small();
    cfg.epochs = 3;
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(1);
    model.fit(&loaded, &mut rng).unwrap();
    let model_path = dir.join("model.vrdg");
    model.save(&model_path).unwrap();

    // load + generate + save TSV
    let restored = Vrdag::load(&model_path).unwrap();
    let mut gen_rng = StdRng::seed_from_u64(2);
    let synthetic = restored.generate(g.t_len(), &mut gen_rng).unwrap();
    let synth_path = dir.join("synthetic.tsv");
    io::save_tsv(&synthetic, &synth_path).unwrap();

    // evaluate
    let a = io::load_tsv(&graph_path).unwrap();
    let b = io::load_tsv(&synth_path).unwrap();
    let report = structure_report(&a, &b);
    for v in report.as_row() {
        assert!(v.is_finite());
    }
    let attr = attribute_report(&a, &b);
    assert!(attr.jsd.is_finite() && attr.emd.is_finite());
}

#[test]
fn summary_of_synthetic_matches_spec_shape() {
    let spec = datasets::email().scaled(0.05);
    let g = datasets::generate(&spec, 5);
    let s = metrics::summarize(&g);
    assert_eq!(s.n, spec.n);
    assert_eq!(s.f, spec.f);
    assert_eq!(s.t, spec.t);
    // Persistence parameter (0.45 for Email) should leave a visible trace.
    assert!(s.mean_edge_persistence > 0.1, "persistence {}", s.mean_edge_persistence);
    // Communication flavor has meaningful reciprocity.
    assert!(s.mean_reciprocity > 0.05, "reciprocity {}", s.mean_reciprocity);
    assert!(s.mean_in_ple > 1.0);
}

#[test]
fn churn_generation_is_scorable() {
    let g = datasets::generate(&datasets::tiny(), 88);
    let mut cfg = VrdagConfig::test_small();
    cfg.epochs = 2;
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(3);
    model.fit(&g, &mut rng).unwrap();
    let churned = model.generate_with_churn(g.t_len(), &ChurnConfig::default(), &mut rng).unwrap();
    assert_eq!(churned.n_nodes(), g.n_nodes());
    let rep = structure_report(&g, &churned);
    for v in rep.as_row() {
        assert!(v.is_finite());
    }
}

#[test]
fn loaded_model_stats_survive() {
    let dir = work_dir();
    let g = datasets::generate(&datasets::tiny(), 99);
    let mut cfg = VrdagConfig::test_small();
    cfg.epochs = 2;
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(4);
    model.fit(&g, &mut rng).unwrap();
    let path = dir.join("stats.vrdg");
    model.save(&path).unwrap();
    let loaded = Vrdag::load(&path).unwrap();
    let orig = model.stats().unwrap();
    let rest = loaded.stats().unwrap();
    assert_eq!(orig.edges_per_step, rest.edges_per_step);
    assert_eq!(orig.train_t, rest.train_t);
    assert_eq!(orig.attr_means, rest.attr_means);
}

//! Cross-crate integration: the full VRDAG pipeline — synthetic dataset →
//! fit → generate → evaluate with the paper's metrics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag_suite::metrics;
use vrdag_suite::prelude::*;

fn train_graph(seed: u64) -> DynamicGraph {
    datasets::generate(&datasets::tiny(), seed)
}

fn quick_model() -> Vrdag {
    let mut cfg = VrdagConfig::test_small();
    cfg.epochs = 6;
    Vrdag::new(cfg)
}

#[test]
fn pipeline_produces_scorable_graphs() {
    let graph = train_graph(1);
    let mut model = quick_model();
    let mut rng = StdRng::seed_from_u64(2);
    let report = model.fit(&graph, &mut rng).expect("fit");
    assert!(report.final_loss.is_finite());
    let generated = model.generate(graph.t_len(), &mut rng).expect("generate");

    // Structure metrics (Table I) all finite and non-negative.
    let s = structure_report(&graph, &generated);
    for (name, v) in metrics::StructureReport::headers().iter().zip(s.as_row()) {
        assert!(v.is_finite() && v >= 0.0, "{name} = {v}");
    }
    // Attribute metrics (Fig. 3) finite, JSD within its bound.
    let a = attribute_report(&graph, &generated);
    assert!(a.jsd >= 0.0 && a.jsd <= std::f64::consts::LN_2 + 1e-9);
    assert!(a.emd.is_finite());
}

#[test]
fn vrdag_beats_mismatched_random_graph_on_structure() {
    // The fitted model must track the original better than an arbitrary
    // different dataset does (a weak but meaningful end-to-end quality
    // bar at tiny scale).
    let graph = train_graph(3);
    let unrelated = datasets::generate(&datasets::guarantee().scaled(0.012), 99);
    let mut model = quick_model();
    let mut rng = StdRng::seed_from_u64(4);
    model.fit(&graph, &mut rng).unwrap();
    let generated = model.generate(graph.t_len(), &mut rng).unwrap();

    let ours = structure_report(&graph, &generated);
    // Compare against the unrelated graph truncated/extended to same T.
    let t = graph.t_len().min(unrelated.t_len());
    let theirs = structure_report(&graph.prefix(t), &unrelated.prefix(t));
    // Win on at least degree-distribution tracking (the headline metric).
    let our_deg = ours.in_deg_dist + ours.out_deg_dist;
    let their_deg = theirs.in_deg_dist + theirs.out_deg_dist;
    assert!(
        our_deg <= their_deg * 1.5,
        "VRDAG degree MMD {our_deg} not competitive vs unrelated graph {their_deg}"
    );
}

#[test]
fn generation_is_reproducible_for_fixed_seeds() {
    let graph = train_graph(5);
    let mut m1 = quick_model();
    let mut m2 = quick_model();
    let mut r1 = StdRng::seed_from_u64(7);
    let mut r2 = StdRng::seed_from_u64(7);
    m1.fit(&graph, &mut r1).unwrap();
    m2.fit(&graph, &mut r2).unwrap();
    let g1 = m1.generate(4, &mut r1).unwrap();
    let g2 = m2.generate(4, &mut r2).unwrap();
    assert_eq!(g1, g2, "identical seeds must yield identical graphs");
}

#[test]
fn generated_graph_survives_io_round_trip() {
    let graph = train_graph(8);
    let mut model = quick_model();
    let mut rng = StdRng::seed_from_u64(9);
    model.fit(&graph, &mut rng).unwrap();
    let generated = model.generate(3, &mut rng).unwrap();

    let dir = std::env::temp_dir().join("vrdag_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let tsv = dir.join("gen.tsv");
    vrdag_suite::graph::io::save_tsv(&generated, &tsv).unwrap();
    let loaded = vrdag_suite::graph::io::load_tsv(&tsv).unwrap();
    assert_eq!(generated, loaded);

    let bin = dir.join("gen.bin");
    vrdag_suite::graph::io::save_binary(&generated, &bin).unwrap();
    let loaded = vrdag_suite::graph::io::load_binary(&bin).unwrap();
    assert_eq!(generated, loaded);
}

#[test]
fn dynamic_difference_metrics_are_consistent() {
    let graph = train_graph(10);
    let mut model = quick_model();
    let mut rng = StdRng::seed_from_u64(11);
    model.fit(&graph, &mut rng).unwrap();
    let generated = model.generate(graph.t_len(), &mut rng).unwrap();
    for prop in [
        metrics::StructuralProperty::Degree,
        metrics::StructuralProperty::Clustering,
        metrics::StructuralProperty::Coreness,
    ] {
        let orig = metrics::structure_difference_series(&graph, prop);
        let gen = metrics::structure_difference_series(&generated, prop);
        assert_eq!(orig.len(), graph.t_len() - 1);
        assert_eq!(gen.len(), generated.t_len() - 1);
        assert!(metrics::series_alignment_error(&orig, &gen).is_finite());
    }
}

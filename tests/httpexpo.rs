//! End-to-end tests of the HTTP observability listener
//! (`vrdag_serve::httpexpo`) over live loopback TCP, on both tiers.
//! The load-bearing contract: `GET /metrics` is **byte-identical** to
//! the wire `METRICS` payload of the same tier (one source of truth,
//! two transports), `/readyz` tracks the tier's real readiness, and
//! the request parser survives arbitrary bytes — this port is exactly
//! where monitoring infrastructure pokes blindly.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use vrdag_suite::prelude::*;
use vrdag_suite::serve::httpexpo::parse_request_line;
use vrdag_suite::serve::protocol::{GenSpec, ReplyHeader, Request, WireFormat};

fn fitted_model(seed: u64) -> Vrdag {
    let g = datasets::generate(&datasets::tiny(), seed);
    let mut cfg = VrdagConfig::test_small();
    cfg.epochs = 2;
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    model.fit(&g, &mut rng).unwrap();
    model
}

fn serve_node(model: &Vrdag, internal: bool) -> (ServeHandle, Frontend) {
    let registry = ModelRegistry::new();
    registry.register("m", model).unwrap();
    let handle = ServeHandle::with_config(
        registry,
        ServeConfig { workers: 1, logger: Logger::disabled(), ..Default::default() },
    )
    .unwrap();
    let frontend = Frontend::bind_with(
        handle.clone(),
        "127.0.0.1:0",
        FrontendConfig { trust_tenant_assertion: internal, ..Default::default() },
    )
    .unwrap();
    (handle, frontend)
}

/// One `GET path` exchange: returns `(status line, body)`.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, Vec<u8>) {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes()).unwrap();
    let mut reply = Vec::new();
    conn.read_to_end(&mut reply).unwrap();
    let split = reply.windows(4).position(|w| w == b"\r\n\r\n").expect("reply has a header block");
    let head = String::from_utf8_lossy(&reply[..split]).to_string();
    let status = head.lines().next().unwrap_or("").to_string();
    (status, reply[split + 4..].to_vec())
}

/// The wire `METRICS` payload over an already-open connection (a fresh
/// connection per fetch would advance the node's own connection
/// counters and defeat the byte-identity comparison).
fn wire_metrics(client: &mut LineClient) -> Vec<u8> {
    let reply = client.request(&Request::Metrics { tag: None }).unwrap();
    assert!(matches!(reply.header, ReplyHeader::Metrics { .. }), "got {:?}", reply.header);
    reply.payload
}

/// Assert HTTP `/metrics` and wire `METRICS` agree byte-for-byte.
/// Order matters: the wire fetch goes first, so the HTTP fetch (which
/// never touches the reactor) reads the exact state the wire render
/// saw once the exchange settled. `vrdag_uptime_seconds` ticks on the
/// wall clock and the exchange can straddle an extra reactor wakeup,
/// so the comparison retries before failing loudly.
fn assert_metrics_byte_identical(http: std::net::SocketAddr, wire: &mut LineClient) {
    let mut last = (Vec::new(), Vec::new());
    for _ in 0..10 {
        let via_wire = wire_metrics(wire);
        let (status, via_http) = http_get(http, "/metrics");
        assert!(status.starts_with("HTTP/1.1 200"), "got {status}");
        if via_http == via_wire {
            return;
        }
        last = (via_wire, via_http);
    }
    assert_eq!(
        String::from_utf8_lossy(&last.0),
        String::from_utf8_lossy(&last.1),
        "GET /metrics must be byte-identical to the wire METRICS payload"
    );
}

#[test]
fn serve_tier_http_metrics_match_wire_and_readiness_tracks_shutdown() {
    let model = fitted_model(37);
    let (handle, frontend) = serve_node(&model, false);
    let metrics_handle = handle.clone();
    let ready_handle = handle.clone();
    let mut expo = HttpExpo::bind(
        "127.0.0.1:0",
        HttpEndpoints {
            metrics: Box::new(move || metrics_handle.metrics_text()),
            ready: Box::new(move || ready_handle.is_accepting()),
            spans: frontend.spans().clone(),
            logger: Logger::disabled(),
        },
    )
    .unwrap();

    // Drive one job through the wire so the metrics carry real traffic
    // and the span ring holds a real trace.
    let mut client = LineClient::connect(frontend.local_addr()).unwrap();
    let reply = client.gen(GenSpec::new("m", 2, 5, WireFormat::Tsv)).unwrap();
    let trace = match &reply.header {
        ReplyHeader::Gen { trace: Some(trace), .. } => trace.clone(),
        other => panic!("expected OK GEN with trace=, got {other:?}"),
    };

    assert_metrics_byte_identical(expo.local_addr(), &mut client);

    let (status, body) = http_get(expo.local_addr(), "/healthz");
    assert!(status.starts_with("HTTP/1.1 200"), "got {status}");
    assert_eq!(body, b"ok\n");
    let (status, _) = http_get(expo.local_addr(), "/readyz");
    assert!(status.starts_with("HTTP/1.1 200"), "accepting node must be ready, got {status}");

    // The trace echoed to the client is queryable over /traces.
    let (status, body) = http_get(expo.local_addr(), "/traces?limit=8");
    assert!(status.starts_with("HTTP/1.1 200"), "got {status}");
    let body = String::from_utf8(body).unwrap();
    assert!(body.contains(&format!("\"trace\":\"{trace}\"")), "trace {trace} not in: {body}");
    assert!(body.contains("\"tier\":\"serve\""), "got: {body}");

    // Shutdown flips readiness to 503 while liveness stays 200 — the
    // orchestrator drains the node instead of restarting it.
    drop(client);
    handle.shutdown();
    let (status, _) = http_get(expo.local_addr(), "/readyz");
    assert!(status.starts_with("HTTP/1.1 503"), "closed node must be unready, got {status}");
    let (status, _) = http_get(expo.local_addr(), "/healthz");
    assert!(status.starts_with("HTTP/1.1 200"), "liveness is not readiness, got {status}");
    expo.shutdown();
}

#[test]
fn route_tier_http_metrics_match_the_wire_aggregate() {
    let model = fitted_model(41);
    let (handle_a, frontend_a) = serve_node(&model, true);
    let (handle_b, frontend_b) = serve_node(&model, true);
    let router = std::sync::Arc::new(
        Router::bind(
            "127.0.0.1:0",
            vec![frontend_a.local_addr(), frontend_b.local_addr()],
            RouterConfig { logger: Logger::disabled(), ..Default::default() },
        )
        .unwrap(),
    );
    let metrics_router = std::sync::Arc::clone(&router);
    let ready_router = std::sync::Arc::clone(&router);
    let mut expo = HttpExpo::bind(
        "127.0.0.1:0",
        HttpEndpoints {
            metrics: Box::new(move || metrics_router.metrics_text()),
            ready: Box::new(move || ready_router.ready()),
            spans: router.spans().clone(),
            logger: Logger::disabled(),
        },
    )
    .unwrap();

    // Traffic through the relay so the aggregate is non-trivial.
    let mut client = LineClient::connect(router.local_addr()).unwrap();
    for seed in [0u64, 9000] {
        let reply = client.gen(GenSpec::new("m", 2, seed, WireFormat::Tsv)).unwrap();
        assert!(matches!(reply.header, ReplyHeader::Gen { .. }), "got {:?}", reply.header);
    }

    let (status, _) = http_get(expo.local_addr(), "/readyz");
    assert!(status.starts_with("HTTP/1.1 200"), "router with live backends is ready: {status}");

    // Live fleet: the HTTP payload is the same backend fan-out + merge
    // the wire aggregate performs — backend families summed across the
    // fleet, router-own families alongside. (The *backends'* payloads
    // advance with every scrape — each fan-out is a connection they
    // count — so live-fleet scrapes are compared structurally and the
    // byte-identity pin below runs against the drained router.)
    let (status, body) = http_get(expo.local_addr(), "/metrics");
    assert!(status.starts_with("HTTP/1.1 200"), "got {status}");
    let via_http = String::from_utf8(body).unwrap();
    assert!(via_http.contains("vrdag_build_info"), "build info must merge in:\n{via_http}");
    assert!(via_http.contains("vrdag_route_relay_seconds"), "router families:\n{via_http}");
    assert!(via_http.contains("vrdag_jobs_completed_total 2"), "fleet sums:\n{via_http}");
    let families = |text: &str| {
        text.lines().filter(|l| l.starts_with("# TYPE")).map(str::to_string).collect::<Vec<_>>()
    };
    let via_wire = String::from_utf8(wire_metrics(&mut client)).unwrap();
    assert_eq!(families(&via_http), families(&via_wire), "same families on both transports");

    // Drained fleet: with every backend down both transports render
    // the router's own registry alone, and the payloads must be
    // byte-identical — this pins the shared merge + render path.
    drop(frontend_a);
    drop(frontend_b);
    handle_a.shutdown();
    handle_b.shutdown();
    assert_metrics_byte_identical(expo.local_addr(), &mut client);
    let (status, _) = http_get(expo.local_addr(), "/readyz");
    assert!(status.starts_with("HTTP/1.1 503"), "backend-less router is unready: {status}");

    expo.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The request-line parser is a total function: arbitrary junk
    /// (including embedded NULs and non-ASCII) never panics, and
    /// whatever it accepts is a well-formed GET/HEAD line.
    #[test]
    fn request_line_parser_never_panics(raw in prop::collection::vec(0u16..256, 0..200)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let line = String::from_utf8_lossy(&bytes);
        if let Some((method, target)) = parse_request_line(&line) {
            prop_assert!(method == "GET" || method == "HEAD");
            prop_assert!(target.starts_with('/'));
        }
    }

    /// Adversarial-but-plausible request lines — real HTTP words glued
    /// in random order with random spacing — never panic either, and
    /// well-formed ones are accepted.
    #[test]
    fn request_line_token_soup_never_panics(
        pieces in prop::collection::vec((0u16..12, 0u16..100), 0..12),
    ) {
        let vocab = [
            "GET", "HEAD", "POST", "/metrics", "/traces?limit=", "HTTP/1.1", "HTTP/1.0",
            "HTTP/2", "?", "=", "//", "\r",
        ];
        let mut line = String::new();
        for &(word, num) in &pieces {
            line.push_str(vocab[word as usize % vocab.len()]);
            if num % 3 == 0 {
                line.push_str(&num.to_string());
            }
            if num % 4 != 0 {
                line.push(' ');
            }
        }
        let _ = parse_request_line(&line);
    }

    /// Well-formed request lines round-trip through the parser.
    #[test]
    fn request_line_parser_accepts_valid_lines(
        head in (0u8..2, 0u16..1000, 0u8..2),
    ) {
        let (head, path_salt, minor) = head;
        let method = if head == 1 { "HEAD" } else { "GET" };
        let target = format!("/p{path_salt}?limit={path_salt}");
        let line = format!("{method} {target} HTTP/1.{minor}");
        prop_assert_eq!(parse_request_line(&line), Some((method, target.as_str())));
    }
}

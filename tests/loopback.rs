//! End-to-end loopback tests of the TCP line-protocol frontend: live
//! `std::net` server, concurrent clients, bit-identical replies against
//! the direct `ServeHandle` path, deterministic coalescing of duplicate
//! keys, structured backpressure instead of dropped connections, and —
//! since the pipelined protocol — tagged out-of-order completions,
//! `SUB` snapshot streaming, `CANCEL`, and the connection/in-flight
//! caps.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use vrdag_suite::graph::io::BinaryStreamWriter;
use vrdag_suite::prelude::*;
use vrdag_suite::serve::protocol::{
    EndStatus, ErrorCode, GenSpec, ReplyHeader, Request, StreamOutcome, TagDemux, WireFormat,
};
use vrdag_suite::serve::FrontendConfig;

fn fitted_model(seed: u64) -> Vrdag {
    let g = datasets::generate(&datasets::tiny(), seed);
    let mut cfg = VrdagConfig::test_small();
    cfg.epochs = 2;
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    model.fit(&g, &mut rng).unwrap();
    model
}

/// Serialize exactly as the frontend does for each wire format.
fn encode(graph: &DynamicGraph, fmt: WireFormat) -> Vec<u8> {
    match fmt {
        WireFormat::Tsv => vrdag_suite::graph::io::write_tsv(graph, Vec::new()).unwrap(),
        WireFormat::Bin => {
            let mut w = BinaryStreamWriter::new(
                Vec::new(),
                graph.n_nodes(),
                graph.n_attrs(),
                graph.t_len(),
            )
            .unwrap();
            for (_, s) in graph.iter() {
                w.write_snapshot(s).unwrap();
            }
            w.finish().unwrap()
        }
    }
}

/// Generate `(t_len, seed)` through a direct `ServeHandle` and encode it
/// as the ground truth for a wire reply.
fn direct_payload(registry: &ModelRegistry, t_len: usize, seed: u64, fmt: WireFormat) -> Vec<u8> {
    let direct = ServeHandle::new(registry.clone(), 1).unwrap();
    let ticket = direct.submit(GenRequest::new("m", t_len, seed, GenSink::InMemory)).unwrap();
    let result = ticket.wait().unwrap();
    assert!(result.is_ok(), "{:?}", result.error);
    let payload = encode(result.graph.as_deref().unwrap(), fmt);
    direct.shutdown();
    payload
}

#[test]
fn concurrent_clients_get_bit_identical_replies_and_duplicates_coalesce() {
    let model = fitted_model(11);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();

    // Ground truth through a *separate* direct ServeHandle core (same
    // artifact, untouched stats), so the frontend core's cache counters
    // below are exactly the TCP traffic's.
    let direct = ServeHandle::new(registry.clone(), 2).unwrap();
    let keys: Vec<(usize, u64)> = vec![(3, 1), (3, 2), (4, 1)];
    let mut expected: HashMap<(usize, u64, bool), Vec<u8>> = HashMap::new();
    for &(t_len, seed) in &keys {
        let ticket = direct.submit(GenRequest::new("m", t_len, seed, GenSink::InMemory)).unwrap();
        let result = ticket.wait().unwrap();
        assert!(result.is_ok(), "{:?}", result.error);
        let graph = result.graph.as_deref().unwrap();
        expected.insert((t_len, seed, false), encode(graph, WireFormat::Tsv));
        expected.insert((t_len, seed, true), encode(graph, WireFormat::Bin));
    }
    direct.shutdown();

    let handle = ServeHandle::with_config(
        registry,
        ServeConfig { workers: 2, cache: CacheBudget::entries(32), ..Default::default() },
    )
    .unwrap();
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let addr = frontend.local_addr();

    // 4 concurrent clients all request every key — overlapping
    // (model, t, seed) traffic, half tsv, half bin (the format changes
    // the encoding, not the cache key).
    let clients: Vec<_> = (0..4usize)
        .map(|client| {
            let keys = keys.clone();
            std::thread::spawn(move || {
                let fmt = if client % 2 == 0 { WireFormat::Tsv } else { WireFormat::Bin };
                let mut conn = LineClient::connect(addr).unwrap();
                let mut replies = Vec::new();
                for (t_len, seed) in keys {
                    let reply = conn.gen(GenSpec::new("m", t_len, seed, fmt)).unwrap();
                    match reply.header {
                        ReplyHeader::Gen {
                            t_len: rt, seed: rs, fmt: rf, snapshots, bytes, ..
                        } => {
                            assert_eq!((rt, rs, rf), (t_len, seed, fmt), "reply routed wrong");
                            assert_eq!(snapshots, t_len);
                            assert_eq!(bytes, reply.payload.len());
                        }
                        other => panic!("expected OK GEN, got {other:?}"),
                    }
                    replies.push((t_len, seed, fmt == WireFormat::Bin, reply.payload));
                }
                let bye = conn.request(&Request::Quit { tag: None }).unwrap();
                assert!(matches!(bye.header, ReplyHeader::Bye { .. }));
                replies
            })
        })
        .collect();
    for client in clients {
        for (t_len, seed, bin, payload) in client.join().unwrap() {
            assert_eq!(
                &payload,
                expected.get(&(t_len, seed, bin)).unwrap(),
                "reply for t={t_len} seed={seed} bin={bin} diverged from the direct path"
            );
        }
    }

    // Duplicates coalesced: 4 clients x 3 keys = 12 lookups, exactly one
    // miss per unique (model, t, seed) key, everything else served from
    // the cache.
    let stats = handle.stats();
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.cache.misses, keys.len() as u64, "{stats:?}");
    assert_eq!(stats.cache.hits, 12 - keys.len() as u64, "{stats:?}");
    assert_eq!(stats.cache.evictions, 0);
}

#[test]
fn pipelined_tagged_gens_complete_out_of_order_and_demux_by_tag() {
    let model = fitted_model(21);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();

    // One long job and four short ones, mixed formats. Cache disabled so
    // every job really generates — the long one must occupy a worker
    // while the short ones overtake it.
    let jobs: Vec<(&str, usize, u64, WireFormat)> = vec![
        ("big", 80, 1, WireFormat::Tsv),
        ("s1", 1, 2, WireFormat::Tsv),
        ("s2", 1, 3, WireFormat::Bin),
        ("s3", 2, 4, WireFormat::Tsv),
        ("s4", 1, 5, WireFormat::Bin),
    ];
    let expected: HashMap<&str, Vec<u8>> = jobs
        .iter()
        .map(|&(tag, t_len, seed, fmt)| (tag, direct_payload(&registry, t_len, seed, fmt)))
        .collect();

    let handle = ServeHandle::new(registry, 2).unwrap();
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();

    // Fire the whole pipeline without reading a single reply: the big
    // job first, so in-order delivery would have to stall the others.
    for &(tag, t_len, seed, fmt) in &jobs {
        conn.send(&Request::Gen(GenSpec::new("m", t_len, seed, fmt).with_tag(tag))).unwrap();
    }

    let mut demux = TagDemux::new();
    let mut arrival: Vec<String> = Vec::new();
    while arrival.len() < jobs.len() {
        let reply = conn.read_frame().unwrap();
        match &reply.header {
            ReplyHeader::Gen { tag: Some(tag), bytes, .. } => {
                assert_eq!(*bytes, reply.payload.len());
                arrival.push(tag.clone());
                demux.feed(&reply.header, &reply.payload).unwrap();
            }
            other => panic!("expected a tagged OK GEN, got {other:?}"),
        }
    }

    // Every tagged reply is bit-identical to the direct path.
    for &(tag, ..) in &jobs {
        let stream = demux.get(tag).unwrap();
        assert_eq!(stream.outcome, Some(StreamOutcome::Reply), "{tag}");
        assert_eq!(&stream.payload, expected.get(tag).unwrap(), "tag {tag} payload diverged");
    }
    // Pipelining proof: the first-submitted (slow) job did NOT arrive
    // first — at least one later, shorter job overtook it.
    assert_ne!(arrival[0], "big", "no out-of-submission-order completion: {arrival:?}");
    assert_eq!(arrival.last().map(String::as_str), Some("big"), "{arrival:?}");

    // The connection is still usable lock-step afterwards.
    let pong = conn.request(&Request::Ping { tag: None }).unwrap();
    assert!(matches!(pong.header, ReplyHeader::Pong { tag: None }));
}

#[test]
fn sub_streams_equal_buffered_gen_payloads() {
    let model = fitted_model(22);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    // Cache enabled: the GEN populates it, so the SUB exercises the
    // cache-hit *replay* path — which must stream the exact same frames
    // as cold generation.
    let handle = ServeHandle::with_config(
        registry,
        ServeConfig { workers: 1, cache: CacheBudget::entries(8), ..Default::default() },
    )
    .unwrap();
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();

    for (fmt, t_len, seed) in [(WireFormat::Tsv, 6, 7u64), (WireFormat::Bin, 5, 9u64)] {
        let mut conn = LineClient::connect(frontend.local_addr()).unwrap();
        let buffered = conn.gen(GenSpec::new("m", t_len, seed, fmt)).unwrap();
        let expected_payload = match &buffered.header {
            ReplyHeader::Gen { snapshots, .. } => {
                assert_eq!(*snapshots, t_len);
                buffered.payload.clone()
            }
            other => panic!("expected OK GEN, got {other:?}"),
        };

        conn.send(&Request::Sub(GenSpec::new("m", t_len, seed, fmt).with_tag("st"))).unwrap();
        let mut demux = TagDemux::new();
        let mut evt_frames = 0usize;
        loop {
            let reply = conn.read_frame().unwrap();
            match &reply.header {
                ReplyHeader::Sub { tag, t_len: acked, .. } => {
                    assert_eq!(tag, "st");
                    assert_eq!(*acked, t_len);
                    demux.feed(&reply.header, &reply.payload).unwrap();
                }
                ReplyHeader::Evt { snap, of, bytes, .. } => {
                    assert_eq!(*of, t_len);
                    assert_eq!(*snap, evt_frames, "frames arrive in snapshot order");
                    assert_eq!(*bytes, reply.payload.len());
                    evt_frames += 1;
                    demux.feed(&reply.header, &reply.payload).unwrap();
                }
                ReplyHeader::End { .. } => {
                    demux.feed(&reply.header, &reply.payload).unwrap();
                    break;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        // Exactly t EVT frames whose concatenation equals the buffered
        // GEN payload, terminated by a clean END.
        assert_eq!(evt_frames, t_len);
        let stream = demux.take("st").unwrap();
        assert_eq!(stream.outcome, Some(StreamOutcome::Complete));
        assert_eq!(stream.frames, t_len);
        assert_eq!(stream.payload, expected_payload, "fmt {fmt}: stream != buffered payload");
    }
    // Both SUBs were served from the cache (the GENs generated).
    let stats = handle.stats();
    assert_eq!(stats.cache.misses, 2, "{stats:?}");
    assert!(stats.cache.hits >= 2, "{stats:?}");
}

#[test]
fn parallel_sub_streams_equal_buffered_gen_and_report_consistent_stage_timings() {
    let model = fitted_model(28);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    // Intra-job parallelism explicitly on (the clamp may still reduce it
    // on a small host — determinism must hold either way): the SUB below
    // is a *cold* decode streamed through the encode pipeline, and the
    // GEN after it replays the now-cached value buffered. Both byte
    // paths must agree exactly.
    let handle = ServeHandle::with_config(
        registry,
        ServeConfig {
            workers: 1,
            cache: CacheBudget::entries(8),
            intra_threads: Some(4),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(handle.intra_threads() >= 1);
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();

    for (fmt, t_len, seed) in [(WireFormat::Tsv, 6, 7u64), (WireFormat::Bin, 5, 9u64)] {
        let mut conn = LineClient::connect(frontend.local_addr()).unwrap();
        conn.send(&Request::Sub(GenSpec::new("m", t_len, seed, fmt).with_tag("pp"))).unwrap();
        let mut demux = TagDemux::new();
        let mut evt_frames = 0usize;
        let (qms, genms) = loop {
            let reply = conn.read_frame().unwrap();
            match &reply.header {
                ReplyHeader::Sub { tag, .. } => {
                    assert_eq!(tag, "pp");
                    demux.feed(&reply.header, &reply.payload).unwrap();
                }
                ReplyHeader::Evt { snap, bytes, .. } => {
                    assert_eq!(*snap, evt_frames, "frames arrive in snapshot order");
                    assert_eq!(*bytes, reply.payload.len());
                    evt_frames += 1;
                    demux.feed(&reply.header, &reply.payload).unwrap();
                }
                ReplyHeader::End { tag, status, snapshots, qms, genms, .. } => {
                    assert_eq!(tag, "pp");
                    assert_eq!(*status, EndStatus::Ok);
                    assert_eq!(*snapshots, t_len);
                    demux.feed(&reply.header, &reply.payload).unwrap();
                    break (*qms, *genms);
                }
                other => panic!("unexpected frame {other:?}"),
            }
        };
        // Stage timings survive the pipelined path: END still reports
        // queue wait and generation time for the cold parallel job.
        assert!(qms.is_some(), "fmt {fmt}: END lost qms= under intra-job parallelism");
        assert!(genms.is_some(), "fmt {fmt}: END lost genms= under intra-job parallelism");
        assert_eq!(evt_frames, t_len);
        let stream = demux.take("pp").unwrap();
        assert_eq!(stream.outcome, Some(StreamOutcome::Complete));
        assert_eq!(stream.frames, t_len);

        let buffered = conn.gen(GenSpec::new("m", t_len, seed, fmt)).unwrap();
        match &buffered.header {
            ReplyHeader::Gen { snapshots, .. } => assert_eq!(*snapshots, t_len),
            other => panic!("expected OK GEN, got {other:?}"),
        }
        assert_eq!(
            stream.payload, buffered.payload,
            "fmt {fmt}: parallel SUB stream != buffered GEN payload"
        );
    }

    // The cold SUBs generated, the GENs replayed from the cache; the
    // per-stage aggregates stay internally consistent (a job's first
    // snapshot can never land after its last).
    let stats = handle.stats();
    assert_eq!(stats.cache.misses, 2, "{stats:?}");
    assert!(stats.cache.hits >= 2, "{stats:?}");
    assert!(
        stats.stages.first_snapshot.max_seconds <= stats.stages.generation.max_seconds + 1e-9,
        "{:?}",
        stats.stages
    );
}

#[test]
fn cancel_mid_stream_ends_the_subscription_and_keeps_the_connection() {
    let model = fitted_model(23);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let handle = ServeHandle::new(registry, 1).unwrap();
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();

    // CANCEL of a tag that is not in flight: found=false, nothing else.
    let miss = conn.request(&Request::Cancel { tag: "ghost".to_string() }).unwrap();
    assert!(matches!(miss.header, ReplyHeader::Cancel { found: false, .. }));

    // A long subscription, cancelled after two delivered snapshots.
    let total = 400usize;
    conn.send(&Request::Sub(GenSpec::new("m", total, 0, WireFormat::Tsv).with_tag("long")))
        .unwrap();
    let ack = conn.read_frame().unwrap();
    assert!(matches!(ack.header, ReplyHeader::Sub { .. }), "{:?}", ack.header);
    let mut seen = 0usize;
    while seen < 2 {
        let reply = conn.read_frame().unwrap();
        match reply.header {
            ReplyHeader::Evt { snap, .. } => {
                assert_eq!(snap, seen);
                seen += 1;
            }
            other => panic!("expected EVT, got {other:?}"),
        }
    }
    conn.send(&Request::Cancel { tag: "long".to_string() }).unwrap();
    // In-flight EVT frames may still arrive before the CANCEL lands;
    // consume until the stream terminates.
    let mut cancel_acked = false;
    let (snapshots, status) = loop {
        let reply = conn.read_frame().unwrap();
        match reply.header {
            ReplyHeader::Evt { snap, .. } => {
                assert_eq!(snap, seen);
                seen += 1;
            }
            ReplyHeader::Cancel { tag, found } => {
                assert_eq!(tag, "long");
                assert!(found, "the subscription was in flight");
                cancel_acked = true;
            }
            ReplyHeader::End { tag, snapshots, status, .. } => {
                assert_eq!(tag, "long");
                break (snapshots, status);
            }
            other => panic!("unexpected frame {other:?}"),
        }
    };
    assert!(cancel_acked);
    assert_eq!(status, EndStatus::Cancelled);
    assert_eq!(snapshots, seen, "END reports the frames actually delivered");
    assert!(snapshots < total, "cancellation really stopped the stream early");

    // The connection survived and serves lock-step work again.
    let pong = conn.request(&Request::Ping { tag: None }).unwrap();
    assert!(matches!(pong.header, ReplyHeader::Pong { .. }));
    let reply = conn.gen(GenSpec::new("m", 2, 1, WireFormat::Tsv)).unwrap();
    assert!(matches!(reply.header, ReplyHeader::Gen { .. }));
    // The cancelled job is visible in the stats and not counted failed.
    let stats = handle.stats();
    assert_eq!(stats.cancelled, 1, "{stats:?}");
    assert_eq!(stats.failed, 0, "{stats:?}");
}

#[test]
fn inflight_cap_and_duplicate_tags_answer_structured_errors() {
    let model = fitted_model(24);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let handle = ServeHandle::new(registry, 1).unwrap();
    let frontend = Frontend::bind_with(
        handle.clone(),
        "127.0.0.1:0",
        FrontendConfig { max_inflight_per_conn: 1, ..Default::default() },
    )
    .unwrap();

    // Pin the single worker via the shared handle so the wire job below
    // stays in flight deterministically.
    let (started_tx, started_rx) = std::sync::mpsc::channel();
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let mut fired = false;
    let blocker = handle
        .submit(GenRequest::new(
            "m",
            1,
            0,
            GenSink::Callback(Box::new(move |_, _| {
                if !fired {
                    fired = true;
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                }
            })),
        ))
        .unwrap();
    started_rx.recv().unwrap();

    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();
    conn.send(&Request::Gen(GenSpec::new("m", 1, 1, WireFormat::Tsv).with_tag("a"))).unwrap();
    // Same tag again: rejected as a duplicate while `a` is in flight.
    let dup = conn
        .request(&Request::Gen(GenSpec::new("m", 1, 2, WireFormat::Tsv).with_tag("a")))
        .unwrap();
    match dup.header {
        ReplyHeader::Err { code, tag, .. } => {
            assert_eq!(code, ErrorCode::DuplicateTag);
            assert_eq!(tag.as_deref(), Some("a"));
        }
        other => panic!("expected ERR duplicate-tag, got {other:?}"),
    }
    // A different tag: over the per-connection in-flight cap.
    let over = conn
        .request(&Request::Gen(GenSpec::new("m", 1, 3, WireFormat::Tsv).with_tag("b")))
        .unwrap();
    match over.header {
        ReplyHeader::Err { code, tag, message } => {
            assert_eq!(code, ErrorCode::TooManyInflight);
            assert_eq!(tag.as_deref(), Some("b"));
            assert!(message.contains("cap=1"), "{message}");
        }
        other => panic!("expected ERR too-many-inflight, got {other:?}"),
    }
    // Unpin; tag `a` resolves and frees the slot for new work.
    release_tx.send(()).unwrap();
    blocker.wait().unwrap();
    let reply = conn.read_frame().unwrap();
    match reply.header {
        ReplyHeader::Gen { tag, .. } => assert_eq!(tag.as_deref(), Some("a")),
        other => panic!("expected OK GEN tag=a, got {other:?}"),
    }
    let retry = conn
        .request(&Request::Gen(GenSpec::new("m", 1, 3, WireFormat::Tsv).with_tag("b")))
        .unwrap();
    assert!(matches!(retry.header, ReplyHeader::Gen { .. }), "{:?}", retry.header);
}

#[test]
fn connection_cap_greets_with_structured_error_and_recovers() {
    let model = fitted_model(25);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let handle = ServeHandle::new(registry, 1).unwrap();
    let frontend = Frontend::bind_with(
        handle.clone(),
        "127.0.0.1:0",
        FrontendConfig { max_connections: Some(1), ..Default::default() },
    )
    .unwrap();
    let addr = frontend.local_addr();

    let mut first = LineClient::connect(addr).unwrap();
    // The PING round trip proves the handler is registered in the
    // accept loop's table before the second connect below.
    assert!(matches!(
        first.request(&Request::Ping { tag: None }).unwrap().header,
        ReplyHeader::Pong { .. }
    ));

    // Over the cap: a structured greeting, then close.
    let mut second = LineClient::connect(addr).unwrap();
    let greeting = second.read_frame().unwrap();
    match greeting.header {
        ReplyHeader::Err { code, message, .. } => {
            assert_eq!(code, ErrorCode::TooManyConnections);
            assert!(message.contains("cap=1"), "{message}");
        }
        other => panic!("expected ERR too-many-connections, got {other:?}"),
    }
    assert!(second.read_frame().is_err(), "rejected connection must be closed");

    // Close the first connection; the accept loop reaps it and serves
    // new clients again.
    assert!(matches!(
        first.request(&Request::Quit { tag: None }).unwrap().header,
        ReplyHeader::Bye { .. }
    ));
    drop(first);
    let mut recovered = None;
    for _ in 0..500 {
        let mut conn = match LineClient::connect(addr) {
            Ok(conn) => conn,
            Err(_) => continue,
        };
        match conn.request(&Request::Ping { tag: None }) {
            Ok(reply) if matches!(reply.header, ReplyHeader::Pong { .. }) => {
                recovered = Some(conn);
                break;
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    assert!(recovered.is_some(), "frontend never recovered below the connection cap");
}

#[test]
fn saturated_queue_answers_structured_backpressure_and_keeps_the_connection() {
    let model = fitted_model(12);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let handle = ServeHandle::with_config(
        registry,
        ServeConfig { workers: 1, max_queue_depth: Some(1), ..Default::default() },
    )
    .unwrap();
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();

    // Pin the single worker inside a job via the shared handle, then
    // fill the queue to its cap, so the TCP submit below must be
    // rejected deterministically.
    let (started_tx, started_rx) = std::sync::mpsc::channel();
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let mut fired = false;
    let blocker = handle
        .submit(GenRequest::new(
            "m",
            1,
            0,
            GenSink::Callback(Box::new(move |_, _| {
                if !fired {
                    fired = true;
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                }
            })),
        ))
        .unwrap();
    started_rx.recv().unwrap();
    let filler = handle.submit(GenRequest::new("m", 1, 1, GenSink::Discard)).unwrap();

    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();
    let spec = GenSpec::new("m", 2, 9, WireFormat::Tsv);
    let rejected = conn.gen(spec.clone()).unwrap();
    match rejected.header {
        ReplyHeader::Err { code, message, .. } => {
            assert_eq!(code, ErrorCode::QueueFull);
            assert_eq!(message, "depth=1 cap=1", "structured backpressure fields");
        }
        other => panic!("expected ERR queue-full, got {other:?}"),
    }
    // The connection survived the rejection: it still answers.
    let pong = conn.request(&Request::Ping { tag: None }).unwrap();
    assert!(matches!(pong.header, ReplyHeader::Pong { .. }));

    // Unpin the worker; once the backlog drains, the same connection's
    // retry succeeds — the client-side backoff loop the ERR asks for.
    release_tx.send(()).unwrap();
    blocker.wait().unwrap();
    filler.wait().unwrap();
    let mut reply = None;
    for _ in 0..2000 {
        let r = conn.gen(spec.clone()).unwrap();
        match r.header {
            ReplyHeader::Err { code: ErrorCode::QueueFull, .. } => {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            _ => {
                reply = Some(r);
                break;
            }
        }
    }
    let reply = reply.expect("retry after backpressure never succeeded");
    match reply.header {
        ReplyHeader::Gen { seed, snapshots, .. } => {
            assert_eq!(seed, 9);
            assert_eq!(snapshots, 2);
            assert!(!reply.payload.is_empty());
        }
        other => panic!("expected OK GEN after drain, got {other:?}"),
    }
}

#[test]
fn malformed_lines_get_typed_errors_without_losing_the_connection() {
    let model = fitted_model(13);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let handle = ServeHandle::new(registry, 1).unwrap();
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();

    let err_code = |reply: vrdag_suite::serve::Reply| match reply.header {
        ReplyHeader::Err { code, .. } => code,
        other => panic!("expected ERR, got {other:?}"),
    };

    // One connection, a parade of bad input — each answered, none fatal.
    assert_eq!(err_code(conn.send_line("FROBNICATE now").unwrap()), ErrorCode::BadRequest);
    assert_eq!(
        err_code(conn.send_line("GEN model=m t=zero seed=0 fmt=tsv").unwrap()),
        ErrorCode::BadRequest
    );
    assert_eq!(
        err_code(conn.send_line("GEN model=m t=0 seed=0 fmt=tsv").unwrap()),
        ErrorCode::BadRequest
    );
    assert_eq!(
        err_code(conn.send_line("SUB model=m t=1 seed=0 fmt=tsv tag=bad tag").unwrap()),
        ErrorCode::BadRequest
    );
    assert_eq!(
        err_code(conn.send_line("GEN model=m t=1 seed=0 fmt=tsv tag=sp%ce").unwrap()),
        ErrorCode::BadRequest
    );
    assert_eq!(err_code(conn.send_line("CANCEL").unwrap()), ErrorCode::BadRequest);
    assert_eq!(
        err_code(conn.send_line("GEN model=ghost t=1 seed=0 fmt=tsv").unwrap()),
        ErrorCode::UnknownModel
    );
    let oversized = format!("GEN model={} t=1 seed=0 fmt=tsv", "x".repeat(8192));
    assert_eq!(err_code(conn.send_line(&oversized).unwrap()), ErrorCode::LineTooLong);
    // After all of that, the connection still serves real work.
    let reply = conn.gen(GenSpec::new("m", 1, 0, WireFormat::Tsv)).unwrap();
    assert!(matches!(reply.header, ReplyHeader::Gen { .. }));
    assert!(matches!(
        conn.request(&Request::Stats { tag: None }).unwrap().header,
        ReplyHeader::Stats { .. }
    ));
}

#[test]
fn abrupt_disconnect_cancels_untagged_inflight_jobs() {
    let model = fitted_model(26);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let handle = ServeHandle::new(registry, 1).unwrap();
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();
    {
        let mut conn = LineClient::connect(frontend.local_addr()).unwrap();
        // Untagged (legacy-style) long job, then vanish without QUIT.
        conn.send(&Request::Gen(GenSpec::new("m", 50_000, 3, WireFormat::Bin))).unwrap();
        // Give the reader time to dispatch it onto the single worker.
        std::thread::sleep(std::time::Duration::from_millis(300));
    } // drop = abrupt close
      // The teardown must trip the job's token: the worker frees up long
      // before 50k snapshots could possibly generate.
    let mut cancelled = false;
    for _ in 0..400 {
        if handle.stats().cancelled == 1 {
            cancelled = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(cancelled, "disconnect never cancelled the untagged job: {:?}", handle.stats());
}

/// Extract one sample value from Prometheus exposition text. `series`
/// must be the full series name (labels included for labeled series);
/// the ` ` separator after it keeps `foo` from matching `foo_peak`.
fn prom_sample(text: &str, series: &str) -> Option<u64> {
    text.lines().find_map(|line| line.strip_prefix(series)?.strip_prefix(' ')?.parse().ok())
}

#[test]
fn metrics_exposition_agrees_exactly_with_stats_after_deterministic_workload() {
    let model = fitted_model(27);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let handle = ServeHandle::with_config(
        registry,
        ServeConfig { workers: 2, cache: CacheBudget::entries(16), ..Default::default() },
    )
    .unwrap();
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();

    // Deterministic sequential workload: 2 unique keys x 3 requests each
    // → 6 completions, exactly 2 cache misses and 4 hits.
    for _ in 0..3 {
        for seed in [1u64, 2] {
            let reply = conn.gen(GenSpec::new("m", 3, seed, WireFormat::Tsv)).unwrap();
            assert!(matches!(reply.header, ReplyHeader::Gen { .. }), "{:?}", reply.header);
        }
    }
    // One SUB on a cached key: 3 EVT frames, and the END frame must
    // carry the job's queue-wait / generation stage timings.
    conn.send(&Request::Sub(GenSpec::new("m", 3, 1, WireFormat::Tsv).with_tag("mt"))).unwrap();
    let mut evt_frames = 0usize;
    loop {
        let reply = conn.read_frame().unwrap();
        match reply.header {
            ReplyHeader::Sub { .. } => {}
            ReplyHeader::Evt { .. } => evt_frames += 1,
            ReplyHeader::End { tag, status, qms, genms, .. } => {
                assert_eq!(tag, "mt");
                assert_eq!(status, EndStatus::Ok);
                assert!(qms.is_some(), "END must report queue wait");
                assert!(genms.is_some(), "END must report generation time");
                break;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(evt_frames, 3);

    // METRICS over the wire: a length-prefixed Prometheus text payload.
    let reply = conn.request(&Request::Metrics { tag: Some("mx".to_string()) }).unwrap();
    let text = match reply.header {
        ReplyHeader::Metrics { tag, bytes } => {
            assert_eq!(tag.as_deref(), Some("mx"));
            assert_eq!(bytes, reply.payload.len());
            String::from_utf8(reply.payload).unwrap()
        }
        other => panic!("expected OK METRICS, got {other:?}"),
    };
    assert!(text.starts_with("# TYPE "), "exposition must lead with a TYPE line: {text}");

    // Every mirrored job/cache counter agrees *exactly* with the STATS
    // snapshot — same sources, refreshed at exposition time.
    let stats = handle.stats();
    let expect = [
        ("vrdag_jobs_submitted_total", stats.submitted),
        ("vrdag_jobs_completed_total", stats.completed),
        ("vrdag_jobs_failed_total", stats.failed),
        ("vrdag_jobs_cancelled_total", stats.cancelled),
        ("vrdag_jobs_dropped_total", stats.dropped_jobs),
        ("vrdag_snapshots_total", stats.snapshots),
        ("vrdag_edges_total", stats.edges),
        ("vrdag_cache_hits_total", stats.cache.hits),
        ("vrdag_cache_misses_total", stats.cache.misses),
        ("vrdag_cache_insertions_total", stats.cache.insertions),
        ("vrdag_cache_evictions_total", stats.cache.evictions),
        ("vrdag_cache_evicted_bytes_total", stats.cache.evicted_bytes),
        ("vrdag_cache_entries", stats.cache.entries as u64),
        ("vrdag_cache_bytes", stats.cache.bytes as u64),
        ("vrdag_queue_depth", stats.queue_depth as u64),
        ("vrdag_jobs_inflight", stats.in_flight as u64),
        ("vrdag_jobs_inflight_peak", stats.max_in_flight as u64),
    ];
    for (series, want) in expect {
        assert_eq!(prom_sample(&text, series), Some(want), "{series} diverged\n{text}");
    }
    // And the workload's known shape pins the key counters absolutely.
    assert_eq!(stats.completed, 7);
    assert_eq!(stats.cache.misses, 2, "{stats:?}");
    assert_eq!(stats.cache.hits, 5, "{stats:?}");
    assert_eq!(prom_sample(&text, "vrdag_evt_frames_total"), Some(3));
    assert_eq!(prom_sample(&text, "vrdag_connections_total{outcome=\"accepted\"}"), Some(1));
    // Natively-instrumented stage histograms saw every completed job.
    assert_eq!(
        prom_sample(&text, "vrdag_job_stage_seconds_count{stage=\"queue_wait\"}"),
        Some(stats.completed),
        "{text}"
    );

    // STATS over the same connection reflects the identical counters in
    // its human rendering.
    let reply = conn.request(&Request::Stats { tag: None }).unwrap();
    let rendered = match reply.header {
        ReplyHeader::Stats { bytes, .. } => {
            assert_eq!(bytes, reply.payload.len());
            String::from_utf8(reply.payload).unwrap()
        }
        other => panic!("expected OK STATS, got {other:?}"),
    };
    assert!(
        rendered
            .contains(&format!("{} submitted / {} completed", stats.submitted, stats.completed)),
        "{rendered}"
    );
    assert!(rendered.contains("jobs_inflight="), "gauges line missing: {rendered}");
}

#[test]
fn frontend_shutdown_leaves_the_core_usable() {
    let model = fitted_model(14);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let handle = ServeHandle::new(registry, 1).unwrap();
    let mut frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let addr = frontend.local_addr();
    {
        let mut conn = LineClient::connect(addr).unwrap();
        assert!(matches!(
            conn.request(&Request::Ping { tag: None }).unwrap().header,
            ReplyHeader::Pong { .. }
        ));
    }
    frontend.shutdown();
    // The listener is gone (the OS may still accept a connect into the
    // dead backlog, but nothing answers on it).
    match LineClient::connect(addr) {
        Err(_) => {}
        Ok(mut conn) => assert!(
            conn.request(&Request::Ping { tag: None }).is_err(),
            "frontend still serving after shutdown"
        ),
    }
    // ...but the core keeps serving direct traffic.
    let ticket = handle.submit(GenRequest::new("m", 1, 5, GenSink::InMemory)).unwrap();
    assert!(ticket.wait().unwrap().is_ok());
}

//! End-to-end loopback tests of the TCP line-protocol frontend: live
//! `std::net` server, concurrent clients, bit-identical replies against
//! the direct `ServeHandle` path, deterministic coalescing of duplicate
//! keys, and structured backpressure instead of dropped connections.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use vrdag_suite::graph::io::BinaryStreamWriter;
use vrdag_suite::prelude::*;
use vrdag_suite::serve::protocol::{ErrorCode, GenSpec, ReplyHeader, Request, WireFormat};

fn fitted_model(seed: u64) -> Vrdag {
    let g = datasets::generate(&datasets::tiny(), seed);
    let mut cfg = VrdagConfig::test_small();
    cfg.epochs = 2;
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    model.fit(&g, &mut rng).unwrap();
    model
}

/// Serialize exactly as the frontend does for each wire format.
fn encode(graph: &DynamicGraph, fmt: WireFormat) -> Vec<u8> {
    match fmt {
        WireFormat::Tsv => vrdag_suite::graph::io::write_tsv(graph, Vec::new()).unwrap(),
        WireFormat::Bin => {
            let mut w = BinaryStreamWriter::new(
                Vec::new(),
                graph.n_nodes(),
                graph.n_attrs(),
                graph.t_len(),
            )
            .unwrap();
            for (_, s) in graph.iter() {
                w.write_snapshot(s).unwrap();
            }
            w.finish().unwrap()
        }
    }
}

#[test]
fn concurrent_clients_get_bit_identical_replies_and_duplicates_coalesce() {
    let model = fitted_model(11);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();

    // Ground truth through a *separate* direct ServeHandle core (same
    // artifact, untouched stats), so the frontend core's cache counters
    // below are exactly the TCP traffic's.
    let direct = ServeHandle::new(registry.clone(), 2).unwrap();
    let keys: Vec<(usize, u64)> = vec![(3, 1), (3, 2), (4, 1)];
    let mut expected: HashMap<(usize, u64, bool), Vec<u8>> = HashMap::new();
    for &(t_len, seed) in &keys {
        let ticket = direct
            .submit(GenRequest::new("m", t_len, seed, GenSink::InMemory))
            .unwrap();
        let result = ticket.wait().unwrap();
        assert!(result.is_ok(), "{:?}", result.error);
        let graph = result.graph.as_deref().unwrap();
        expected.insert((t_len, seed, false), encode(graph, WireFormat::Tsv));
        expected.insert((t_len, seed, true), encode(graph, WireFormat::Bin));
    }
    direct.shutdown();

    let handle = ServeHandle::with_config(
        registry,
        ServeConfig { workers: 2, cache: CacheBudget::entries(32), ..Default::default() },
    )
    .unwrap();
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let addr = frontend.local_addr();

    // 4 concurrent clients all request every key — overlapping
    // (model, t, seed) traffic, half tsv, half bin (the format changes
    // the encoding, not the cache key).
    let clients: Vec<_> = (0..4usize)
        .map(|client| {
            let keys = keys.clone();
            std::thread::spawn(move || {
                let fmt = if client % 2 == 0 { WireFormat::Tsv } else { WireFormat::Bin };
                let mut conn = LineClient::connect(addr).unwrap();
                let mut replies = Vec::new();
                for (t_len, seed) in keys {
                    let reply = conn
                        .gen(GenSpec {
                            model: "m".to_string(),
                            t_len,
                            seed,
                            fmt,
                            priority: 0,
                        })
                        .unwrap();
                    match reply.header {
                        ReplyHeader::Gen {
                            t_len: rt,
                            seed: rs,
                            fmt: rf,
                            snapshots,
                            bytes,
                            ..
                        } => {
                            assert_eq!((rt, rs, rf), (t_len, seed, fmt), "reply routed wrong");
                            assert_eq!(snapshots, t_len);
                            assert_eq!(bytes, reply.payload.len());
                        }
                        other => panic!("expected OK GEN, got {other:?}"),
                    }
                    replies.push((t_len, seed, fmt == WireFormat::Bin, reply.payload));
                }
                let bye = conn.request(&Request::Quit).unwrap();
                assert!(matches!(bye.header, ReplyHeader::Bye));
                replies
            })
        })
        .collect();
    for client in clients {
        for (t_len, seed, bin, payload) in client.join().unwrap() {
            assert_eq!(
                &payload,
                expected.get(&(t_len, seed, bin)).unwrap(),
                "reply for t={t_len} seed={seed} bin={bin} diverged from the direct path"
            );
        }
    }

    // Duplicates coalesced: 4 clients x 3 keys = 12 lookups, exactly one
    // miss per unique (model, t, seed) key, everything else served from
    // the cache.
    let stats = handle.stats();
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.cache.misses, keys.len() as u64, "{stats:?}");
    assert_eq!(stats.cache.hits, 12 - keys.len() as u64, "{stats:?}");
    assert_eq!(stats.cache.evictions, 0);
}

#[test]
fn saturated_queue_answers_structured_backpressure_and_keeps_the_connection() {
    let model = fitted_model(12);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let handle = ServeHandle::with_config(
        registry,
        ServeConfig { workers: 1, max_queue_depth: Some(1), ..Default::default() },
    )
    .unwrap();
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();

    // Pin the single worker inside a job via the shared handle, then
    // fill the queue to its cap, so the TCP submit below must be
    // rejected deterministically.
    let (started_tx, started_rx) = std::sync::mpsc::channel();
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let mut fired = false;
    let blocker = handle
        .submit(GenRequest::new(
            "m",
            1,
            0,
            GenSink::Callback(Box::new(move |_, _| {
                if !fired {
                    fired = true;
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                }
            })),
        ))
        .unwrap();
    started_rx.recv().unwrap();
    let filler = handle.submit(GenRequest::new("m", 1, 1, GenSink::Discard)).unwrap();

    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();
    let spec = GenSpec {
        model: "m".to_string(),
        t_len: 2,
        seed: 9,
        fmt: WireFormat::Tsv,
        priority: 0,
    };
    let rejected = conn.gen(spec.clone()).unwrap();
    match rejected.header {
        ReplyHeader::Err { code, message } => {
            assert_eq!(code, ErrorCode::QueueFull);
            assert_eq!(message, "depth=1 cap=1", "structured backpressure fields");
        }
        other => panic!("expected ERR queue-full, got {other:?}"),
    }
    // The connection survived the rejection: it still answers.
    let pong = conn.request(&Request::Ping).unwrap();
    assert!(matches!(pong.header, ReplyHeader::Pong));

    // Unpin the worker; once the backlog drains, the same connection's
    // retry succeeds — the client-side backoff loop the ERR asks for.
    release_tx.send(()).unwrap();
    blocker.wait().unwrap();
    filler.wait().unwrap();
    let mut reply = None;
    for _ in 0..2000 {
        let r = conn.gen(spec.clone()).unwrap();
        match r.header {
            ReplyHeader::Err { code: ErrorCode::QueueFull, .. } => {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            _ => {
                reply = Some(r);
                break;
            }
        }
    }
    let reply = reply.expect("retry after backpressure never succeeded");
    match reply.header {
        ReplyHeader::Gen { seed, snapshots, .. } => {
            assert_eq!(seed, 9);
            assert_eq!(snapshots, 2);
            assert!(!reply.payload.is_empty());
        }
        other => panic!("expected OK GEN after drain, got {other:?}"),
    }
}

#[test]
fn malformed_lines_get_typed_errors_without_losing_the_connection() {
    let model = fitted_model(13);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let handle = ServeHandle::new(registry, 1).unwrap();
    let frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let mut conn = LineClient::connect(frontend.local_addr()).unwrap();

    let err_code = |reply: vrdag_suite::serve::Reply| match reply.header {
        ReplyHeader::Err { code, .. } => code,
        other => panic!("expected ERR, got {other:?}"),
    };

    // One connection, a parade of bad input — each answered, none fatal.
    assert_eq!(err_code(conn.send_line("FROBNICATE now").unwrap()), ErrorCode::BadRequest);
    assert_eq!(
        err_code(conn.send_line("GEN model=m t=zero seed=0 fmt=tsv").unwrap()),
        ErrorCode::BadRequest
    );
    assert_eq!(
        err_code(conn.send_line("GEN model=m t=0 seed=0 fmt=tsv").unwrap()),
        ErrorCode::BadRequest
    );
    assert_eq!(
        err_code(conn.send_line("GEN model=ghost t=1 seed=0 fmt=tsv").unwrap()),
        ErrorCode::UnknownModel
    );
    let oversized = format!("GEN model={} t=1 seed=0 fmt=tsv", "x".repeat(8192));
    assert_eq!(err_code(conn.send_line(&oversized).unwrap()), ErrorCode::LineTooLong);
    // Non-UTF-8 bytes are a bad request, not a hangup. (Sent raw; the
    // reply still parses.)
    // After all of that, the connection still serves real work.
    let reply = conn
        .gen(GenSpec {
            model: "m".to_string(),
            t_len: 1,
            seed: 0,
            fmt: WireFormat::Tsv,
            priority: 0,
        })
        .unwrap();
    assert!(matches!(reply.header, ReplyHeader::Gen { .. }));
    assert!(matches!(conn.request(&Request::Stats).unwrap().header, ReplyHeader::Stats { .. }));
}

#[test]
fn frontend_shutdown_leaves_the_core_usable() {
    let model = fitted_model(14);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let handle = ServeHandle::new(registry, 1).unwrap();
    let mut frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let addr = frontend.local_addr();
    {
        let mut conn = LineClient::connect(addr).unwrap();
        assert!(matches!(conn.request(&Request::Ping).unwrap().header, ReplyHeader::Pong));
    }
    frontend.shutdown();
    // The listener is gone (the OS may still accept a connect into the
    // dead backlog, but nothing answers on it).
    match LineClient::connect(addr) {
        Err(_) => {}
        Ok(mut conn) => assert!(
            conn.request(&Request::Ping).is_err(),
            "frontend still serving after shutdown"
        ),
    }
    // ...but the core keeps serving direct traffic.
    let ticket = handle.submit(GenRequest::new("m", 1, 5, GenSink::InMemory)).unwrap();
    assert!(ticket.wait().unwrap().is_ok());
}

//! Thread-count determinism suite: the intra-job parallel decode and the
//! snapshot encode pipeline must never change a single output byte. A
//! `(model, t_len, seed)` triple yields the same TSV and binary payloads
//! whether the job runs on 1, 2, 4, or 8 intra-job threads, cold or
//! replayed from the snapshot cache, and a mid-sequence cancellation
//! trips at the same snapshot boundary with the same delivered prefix.
//!
//! Thread counts are pinned with [`par::with_threads`] (cold paths) and
//! [`ServeConfig::intra_threads`] (served paths) rather than
//! `VRDAG_THREADS`, so the suite exercises every count even on a 1-core
//! runner — the env default is latched once per process and cannot be
//! varied from inside a test binary.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex, OnceLock};
use vrdag_suite::prelude::*;
use vrdag_suite::tensor::par;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// What a sink observed for one snapshot: `(t, edges, attributes)`.
type DeliveredSnapshot = (usize, Vec<(u32, u32)>, Matrix);

/// One fitted model shared across cases (fitting dominates test time;
/// the properties quantify over seeds and thread counts, not models).
fn model_bytes() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let g = datasets::generate(&datasets::tiny(), 11);
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 2;
        let mut model = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(11);
        model.fit(&g, &mut rng).unwrap();
        model.to_bytes().unwrap()
    })
}

/// Cold (no serving stack) generation, encoded both ways, under whatever
/// thread override is active on the calling thread.
fn cold_payloads(t_len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let model = Vrdag::from_bytes(model_bytes()).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let g = model.generate(t_len, &mut rng).unwrap();
    let tsv = vrdag_suite::graph::io::write_tsv(&g, Vec::new()).unwrap();
    let bin = vrdag_suite::graph::io::encode_binary(&g).as_ref().to_vec();
    (tsv, bin)
}

fn handle_with_intra_threads(n: usize) -> ServeHandle {
    let registry = ModelRegistry::new();
    registry.register_bytes("m", model_bytes().clone()).unwrap();
    ServeHandle::with_config(
        registry,
        ServeConfig {
            workers: 1,
            cache: CacheBudget::entries(8),
            intra_threads: Some(n),
            ..Default::default()
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cold `model.generate` + both encodings are bit-identical across
    /// intra-job thread counts. `with_threads` really fans the decode
    /// out (scoped threads, not cores), so this is a genuine 8-way run
    /// even on a 1-core machine.
    #[test]
    fn cold_generation_bytes_are_thread_count_invariant(
        seed in 0u64..1_000,
        t_len in 1usize..4,
    ) {
        let baseline = par::with_threads(1, || cold_payloads(t_len, seed));
        for &n in &THREAD_COUNTS[1..] {
            let run = par::with_threads(n, || cold_payloads(t_len, seed));
            prop_assert_eq!(&run.0, &baseline.0, "tsv bytes diverged at {} threads", n);
            prop_assert_eq!(&run.1, &baseline.1, "binary bytes diverged at {} threads", n);
        }
    }

    /// A mid-sequence [`CancelToken`] trip from inside the sink stops at
    /// the same snapshot boundary with the same delivered prefix on
    /// every thread count: the pipelined encoder checks the token
    /// between writes, so the decode thread racing ahead never leaks an
    /// extra snapshot to the sink.
    #[test]
    fn cancel_trips_at_the_same_boundary_on_every_thread_count(
        seed in 0u64..1_000,
        trip_t in 1usize..3,
    ) {
        let mut baseline: Option<Vec<DeliveredSnapshot>> = None;
        for &n in &THREAD_COUNTS {
            let handle = handle_with_intra_threads(n);
            let token = CancelToken::new();
            let delivered = Arc::new(Mutex::new(Vec::new()));
            let (rec, tok) = (Arc::clone(&delivered), token.clone());
            let ticket = handle
                .submit(
                    GenRequest::new(
                        "m",
                        64,
                        seed,
                        GenSink::Callback(Box::new(move |t, s| {
                            rec.lock().unwrap().push((t, s.edges().to_vec(), s.attrs().clone()));
                            if t == trip_t {
                                tok.cancel();
                            }
                        })),
                    )
                    .with_cancel(token),
                )
                .unwrap();
            let result = ticket.wait().unwrap();
            handle.shutdown();
            prop_assert!(result.cancelled, "{} threads: trip ignored", n);
            prop_assert!(result.is_ok(), "{} threads: {:?}", n, result.error);
            prop_assert_eq!(result.snapshots, trip_t + 1, "{} threads: wrong boundary", n);
            let got = Arc::try_unwrap(delivered).unwrap().into_inner().unwrap();
            prop_assert_eq!(got.len(), trip_t + 1);
            match &baseline {
                None => baseline = Some(got),
                Some(b) => prop_assert_eq!(&got, b, "prefix diverged at {} threads", n),
            }
        }
    }
}

/// Served generation — cold miss and cache replay, TSV and binary file
/// sinks — produces bit-identical files on every thread count, and all
/// of them match a cold 8-thread in-process run.
#[test]
fn served_cold_and_replay_bytes_are_thread_count_invariant() {
    let dir = std::env::temp_dir().join("vrdag_parallel_determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let (t_len, seed) = (3usize, 77u64);
    let (cold_tsv, cold_bin) = par::with_threads(8, || cold_payloads(t_len, seed));
    for &n in &THREAD_COUNTS {
        let handle = handle_with_intra_threads(n);
        // First pass misses (cold decode through the pipeline), second
        // pass replays the same key out of the snapshot cache.
        let paths = [
            dir.join(format!("cold-{n}.tsv")),
            dir.join(format!("replay-{n}.tsv")),
            dir.join(format!("cold-{n}.vdag")),
            dir.join(format!("replay-{n}.vdag")),
        ];
        let mut results = Vec::new();
        for (i, path) in paths.iter().enumerate() {
            let sink = if i < 2 {
                GenSink::TsvFile(path.clone())
            } else {
                GenSink::BinaryFile(path.clone())
            };
            let ticket = handle.submit(GenRequest::new("m", t_len, seed, sink)).unwrap();
            results.push(ticket.wait().unwrap());
        }
        handle.shutdown();
        for (i, r) in results.iter().enumerate() {
            assert!(r.is_ok(), "{n} threads job {i}: {:?}", r.error);
        }
        assert!(!results[0].cache_hit, "{n} threads: first tsv pass must be cold");
        assert!(results[1].cache_hit, "{n} threads: second tsv pass must replay");
        assert!(results[3].cache_hit, "{n} threads: second binary pass must replay");
        for path in &paths[..2] {
            let bytes = std::fs::read(path).unwrap();
            assert_eq!(bytes, cold_tsv, "{n} threads: tsv bytes diverged ({path:?})");
        }
        for path in &paths[2..] {
            let bytes = std::fs::read(path).unwrap();
            assert_eq!(bytes, cold_bin, "{n} threads: binary bytes diverged ({path:?})");
        }
    }
}

//! Property-based tests (proptest) over the cross-crate invariants: graph
//! storage, metrics, and dataset generation.

use proptest::prelude::*;
use vrdag_suite::graph::algo;
use vrdag_suite::metrics;
use vrdag_suite::prelude::*;

/// Strategy: a random directed edge list over `n` nodes.
fn edges_strategy(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_invariants(edges in edges_strategy(24, 120)) {
        let s = Snapshot::new(24, edges.clone(), Matrix::zeros(24, 0));
        // No self loops, sorted, deduped.
        let mut prev: Option<(u32, u32)> = None;
        for &(u, v) in s.edges() {
            prop_assert_ne!(u, v);
            if let Some(p) = prev {
                prop_assert!((u, v) > p);
            }
            prev = Some((u, v));
        }
        // Degree sums equal edge count in both directions.
        let out_sum: usize = (0..24).map(|i| s.out_degree(i)).sum();
        let in_sum: usize = (0..24).map(|i| s.in_degree(i)).sum();
        prop_assert_eq!(out_sum, s.n_edges());
        prop_assert_eq!(in_sum, s.n_edges());
        // has_edge agrees with the edge list.
        for &(u, v) in s.edges() {
            prop_assert!(s.has_edge(u, v));
        }
    }

    #[test]
    fn component_sizes_partition_nodes(edges in edges_strategy(20, 60)) {
        let s = Snapshot::new(20, edges, Matrix::zeros(20, 0));
        let info = algo::weakly_connected_components(&s);
        let total: u32 = info.sizes.iter().sum();
        prop_assert_eq!(total as usize, 20);
        prop_assert!(info.largest() <= 20);
        prop_assert!(info.count() >= 1);
        // Endpoint pairs share labels.
        for &(u, v) in s.edges() {
            prop_assert_eq!(info.labels[u as usize], info.labels[v as usize]);
        }
    }

    #[test]
    fn coreness_bounded_by_degree(edges in edges_strategy(18, 80)) {
        let s = Snapshot::new(18, edges, Matrix::zeros(18, 0));
        let core = algo::coreness(&s);
        let und = s.undirected_degrees();
        for (c, d) in core.iter().zip(und.iter()) {
            prop_assert!(*c as usize <= *d);
        }
    }

    #[test]
    fn clustering_in_unit_interval(edges in edges_strategy(16, 70)) {
        let s = Snapshot::new(16, edges, Matrix::zeros(16, 0));
        for c in algo::local_clustering(&s) {
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn mmd_properties(
        a in prop::collection::vec(0.0f64..50.0, 1..80),
        b in prop::collection::vec(0.0f64..50.0, 1..80),
    ) {
        let ab = metrics::mmd_gaussian(&a, &b, 32, 0.1);
        let ba = metrics::mmd_gaussian(&b, &a, 32, 0.1);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9, "asymmetric MMD: {} vs {}", ab, ba);
        let aa = metrics::mmd_gaussian(&a, &a, 32, 0.1);
        prop_assert!(aa < 1e-9, "self-MMD {} not ~0", aa);
    }

    #[test]
    fn jsd_bounds_hold(
        a in prop::collection::vec(-10.0f64..10.0, 1..60),
        b in prop::collection::vec(-10.0f64..10.0, 1..60),
    ) {
        let d = metrics::jsd(&a, &b, 24);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= std::f64::consts::LN_2 + 1e-9);
        prop_assert!(metrics::jsd(&a, &a, 24) < 1e-12);
    }

    #[test]
    fn emd_is_a_metric_on_samples(
        a in prop::collection::vec(0.0f64..10.0, 1..40),
        b in prop::collection::vec(0.0f64..10.0, 1..40),
    ) {
        let ab = metrics::emd_1d(&a, &b);
        let ba = metrics::emd_1d(&b, &a);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(metrics::emd_1d(&a, &a) < 1e-12);
    }

    #[test]
    fn spearman_within_bounds(
        a in prop::collection::vec(-100.0f64..100.0, 3..40),
    ) {
        let b: Vec<f64> = a.iter().map(|x| x * 2.0 + 1.0).collect();
        let r = metrics::spearman(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
    }

    #[test]
    fn binary_io_round_trips(edges in edges_strategy(12, 40), seed in 0u64..1000) {
        let attrs = Matrix::rand_uniform(12, 2, -1.0, 1.0,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed));
        let s = Snapshot::new(12, edges, attrs);
        let g = DynamicGraph::new(vec![s]);
        let bytes = vrdag_suite::graph::io::encode_binary(&g);
        let decoded = vrdag_suite::graph::io::decode_binary(bytes).unwrap();
        prop_assert_eq!(g, decoded);
    }

    #[test]
    fn dataset_generator_respects_shape(seed in 0u64..50) {
        let spec = datasets::tiny();
        let g = datasets::generate(&spec, seed);
        prop_assert_eq!(g.n_nodes(), spec.n);
        prop_assert_eq!(g.n_attrs(), spec.f);
        prop_assert_eq!(g.t_len(), spec.t);
        for (_, s) in g.iter() {
            for &(u, v) in s.edges() {
                prop_assert!(u != v);
                prop_assert!((u as usize) < spec.n && (v as usize) < spec.n);
            }
        }
    }
}

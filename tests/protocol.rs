//! Property tests of the wire protocol's framing: arbitrary byte noise,
//! token soup, truncations, and oversized lines must never panic the
//! parsers and always yield a typed `ProtocolError`; every parsed value
//! re-serializes to a canonical line that parses back identically; and
//! random interleavings of tagged `OK`/`EVT`/`END` frames for distinct
//! tags always demux to the correct per-tag payloads.

use proptest::prelude::*;
use vrdag_suite::serve::protocol::{
    parse_reply, parse_request, EndStatus, ErrorCode, GenSpec, ReplyHeader, Request, StreamOutcome,
    TagDemux, WireFormat, MAX_LINE_BYTES,
};

fn lowercase(bytes: &[u8]) -> String {
    bytes.iter().map(|&b| (b'a' + b % 26) as char).collect()
}

/// Map arbitrary bytes onto the tag alphabet (non-empty input → valid tag).
fn tagify(bytes: &[u8]) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._:~-";
    bytes.iter().map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_byte_noise_never_panics(raw in prop::collection::vec(0u16..256, 0..400)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let line = String::from_utf8_lossy(&bytes);
        // Any outcome is fine — panicking is the only failure mode.
        let _ = parse_request(&line);
        let _ = parse_reply(&line);
    }

    #[test]
    fn token_soup_never_panics_and_errors_are_typed(
        pieces in prop::collection::vec((0u16..20, 0u16..1000), 0..20),
    ) {
        // Adversarial-but-plausible lines: real command words, real
        // keys, stray separators, numbers — glued in random order.
        let vocab = [
            "GEN", "SUB", "CANCEL", "STATS", "MODELS", "PING", "QUIT", "OK", "ERR",
            "EVT", "END", "model=", "t=", "seed=", "fmt=tsv", "fmt=", "priority=",
            "tag=", "snap=", "=",
        ];
        let mut line = String::new();
        for &(word, num) in &pieces {
            line.push_str(vocab[word as usize % vocab.len()]);
            if num % 3 != 0 {
                line.push_str(&num.to_string());
            }
            if num % 4 != 0 {
                line.push(' ');
            }
        }
        if let Err(e) = parse_request(&line) {
            // Every failure carries a wire code the frontend can answer with.
            let _ = e.code();
            let _ = e.to_string();
        }
        let _ = parse_reply(&line);
    }

    #[test]
    fn truncated_lines_never_panic(
        args in (1usize..60, 0u64..1_000_000, 0usize..120),
    ) {
        let (t, seed, cut) = args;
        let line = format!("GEN model=m t={t} seed={seed} fmt=bin priority=7 tag=a-1");
        let cut_at = cut % (line.len() + 1);
        // ASCII line, so every cut is a char boundary.
        let _ = parse_request(&line[..cut_at]);
        let reply = format!(
            "OK GEN tag=a-1 id=1 model=m t={t} seed={seed} fmt=bin snapshots={t} edges=12 cache=miss bytes=900"
        );
        let cut_at = cut % (reply.len() + 1);
        let _ = parse_reply(&reply[..cut_at]);
    }

    #[test]
    fn truncated_evt_and_end_frames_never_panic(
        args in (0usize..50, 1usize..60, 0usize..100),
    ) {
        // Truncated streaming frames must never panic — the client's
        // capped reader can hand the parser any prefix when a peer dies
        // mid-header.
        let (snap, of, cut) = args;
        let snap = snap % of;
        let evt = format!("EVT tag=s-{of} snap={snap}/{of} bytes=12345");
        let cut_at = cut % (evt.len() + 1);
        let _ = parse_reply(&evt[..cut_at]);
        if let Err(e) = parse_reply(&evt[..cut_at]) {
            let _ = e.code();
        }
        let end = format!("END tag=s-{of} snapshots={snap} edges=99 status=cancelled");
        let cut_at = cut % (end.len() + 1);
        let _ = parse_reply(&end[..cut_at]);
    }

    #[test]
    fn gen_requests_round_trip(
        args in (
            prop::collection::vec(0u8..26, 1..10),
            1usize..10_000,
            0u64..u64::MAX,
            -100i32..100,
            (0u8..2, prop::collection::vec(0u8..255, 1..20)),
        ),
    ) {
        let (name_raw, t, seed, priority, (has_tag, tag_raw)) = args;
        let fmt = if seed % 2 == 0 { WireFormat::Tsv } else { WireFormat::Bin };
        let tag = (has_tag == 1).then(|| tagify(&tag_raw));
        let spec = GenSpec {
            model: lowercase(&name_raw),
            t_len: t,
            seed,
            fmt,
            priority,
            tag,
            tenant: None,
            trace: (seed % 3 == 0).then(|| format!("{seed:x}-t")),
        };
        // GEN and SUB share the grammar; both round-trip.
        for req in [Request::Gen(spec.clone()), Request::Sub(spec)] {
            let line = req.to_line();
            prop_assert!(line.len() <= MAX_LINE_BYTES);
            // Parse → re-serialize is the identity on canonical lines.
            let parsed = parse_request(&line).unwrap();
            prop_assert_eq!(&parsed, &req);
            prop_assert_eq!(parsed.to_line(), line);
        }
    }

    #[test]
    fn bare_requests_round_trip(
        args in (0u8..6, 0u8..2, prop::collection::vec(0u8..255, 1..20)),
    ) {
        let (which, has_tag, tag_raw) = args;
        let tag = (has_tag == 1).then(|| tagify(&tag_raw));
        let req = match which {
            0 => Request::Stats { tag },
            1 => Request::Models { tag },
            2 => Request::Ping { tag },
            3 => Request::Quit { tag },
            4 => Request::Metrics { tag },
            _ => Request::Cancel { tag: tag.unwrap_or_else(|| "c".to_string()) },
        };
        let line = req.to_line();
        prop_assert_eq!(parse_request(&line).unwrap(), req);
    }

    #[test]
    fn metrics_reply_headers_round_trip(
        args in (0usize..10_000_000, 0u8..2, prop::collection::vec(0u8..255, 1..20)),
    ) {
        let (bytes, has_tag, tag_raw) = args;
        let header = ReplyHeader::Metrics { tag: (has_tag == 1).then(|| tagify(&tag_raw)), bytes };
        let line = header.to_line();
        let parsed = parse_reply(&line).unwrap();
        prop_assert_eq!(&parsed, &header);
        prop_assert_eq!(parsed.to_line(), line);
    }

    #[test]
    fn truncated_metrics_and_timed_end_frames_never_panic(
        args in (0usize..1_000_000, 0u64..100_000, 0u64..100_000, 0usize..120),
    ) {
        // METRICS replies announce a length-prefixed payload; a peer that
        // dies mid-header must yield a typed error, never a panic. Same
        // for END frames carrying the optional stage timings.
        let (bytes, qms, genms, cut) = args;
        let reply = format!("OK METRICS tag=mx bytes={bytes}");
        let cut_at = cut % (reply.len() + 1);
        if let Err(e) = parse_reply(&reply[..cut_at]) {
            let _ = e.code();
        }
        let end = format!("END tag=mx snapshots=3 edges=9 status=ok qms={qms} genms={genms}");
        let cut_at = cut % (end.len() + 1);
        if let Err(e) = parse_reply(&end[..cut_at]) {
            let _ = e.code();
        }
    }

    #[test]
    fn gen_reply_headers_round_trip(
        args in (
            (0u64..u64::MAX, 1usize..10_000, 0u64..u64::MAX),
            (0usize..10_000, 0usize..1_000_000, 0usize..1_000_000),
            0u8..4,
            prop::collection::vec(0u8..26, 1..10),
            (0u8..2, prop::collection::vec(0u8..255, 1..20)),
        ),
    ) {
        let ((id, t, seed), (snapshots, edges, bytes), flags, name_raw, (has_tag, tag_raw)) = args;
        let header = ReplyHeader::Gen {
            tag: (has_tag == 1).then(|| tagify(&tag_raw)),
            id,
            model: lowercase(&name_raw),
            t_len: t,
            seed,
            fmt: if flags % 2 == 0 { WireFormat::Tsv } else { WireFormat::Bin },
            snapshots,
            edges,
            cache_hit: flags >= 2,
            bytes,
            trace: (flags == 3).then(|| format!("{id:x}-r")),
        };
        let line = header.to_line();
        let parsed = parse_reply(&line).unwrap();
        prop_assert_eq!(&parsed, &header);
        prop_assert_eq!(parsed.to_line(), line);
    }

    #[test]
    fn streaming_reply_headers_round_trip(
        args in (
            prop::collection::vec(0u8..255, 1..20),
            (0usize..5_000, 1usize..5_000, 0usize..100_000, 0usize..1_000_000),
            0u8..6,
        ),
    ) {
        let (tag_raw, (snap, of_raw, bytes, edges), flags) = args;
        let tag = tagify(&tag_raw);
        let of = of_raw.max(snap + 1);
        let headers = [
            ReplyHeader::Sub {
                tag: tag.clone(),
                model: "m".to_string(),
                t_len: of,
                seed: 7,
                fmt: if flags % 2 == 0 { WireFormat::Tsv } else { WireFormat::Bin },
            },
            ReplyHeader::Evt { tag: tag.clone(), snap, of, bytes },
            ReplyHeader::End {
                tag: tag.clone(),
                snapshots: snap,
                edges,
                status: if flags % 3 == 0 { EndStatus::Cancelled } else { EndStatus::Ok },
                qms: (flags % 2 == 0).then_some(bytes as u64),
                genms: (flags % 5 == 0).then_some(edges as u64),
                trace: (flags % 4 == 0).then(|| format!("{snap:x}-s")),
            },
            ReplyHeader::Cancel { tag, found: flags % 2 == 0 },
        ];
        for header in headers {
            let line = header.to_line();
            let parsed = parse_reply(&line).unwrap();
            prop_assert_eq!(&parsed, &header, "{}", line);
            prop_assert_eq!(parsed.to_line(), line);
        }
    }

    #[test]
    fn err_reply_headers_round_trip(
        args in (
            0u8..14,
            prop::collection::vec(prop::collection::vec(0u8..26, 1..7), 0..6),
            (0u8..2, prop::collection::vec(0u8..255, 1..20)),
        ),
    ) {
        let (which, words, (has_tag, tag_raw)) = args;
        let code = match which {
            0 => ErrorCode::QueueFull,
            1 => ErrorCode::UnknownModel,
            2 => ErrorCode::InvalidRequest,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::LineTooLong,
            5 => ErrorCode::Shutdown,
            6 => ErrorCode::TooManyInflight,
            7 => ErrorCode::TooManyConnections,
            8 => ErrorCode::DuplicateTag,
            9 => ErrorCode::Cancelled,
            10 => ErrorCode::AuthRequired,
            11 => ErrorCode::AuthFailed,
            12 => ErrorCode::QuotaExceeded,
            _ => ErrorCode::Internal,
        };
        let message =
            words.iter().map(|w| lowercase(w)).collect::<Vec<_>>().join(" ");
        let header = ReplyHeader::Err { code, tag: (has_tag == 1).then(|| tagify(&tag_raw)), message };
        let line = header.to_line();
        let parsed = parse_reply(&line).unwrap();
        prop_assert_eq!(&parsed, &header);
        prop_assert_eq!(parsed.to_line(), line);
    }

    #[test]
    fn auth_requests_and_replies_round_trip(
        args in (
            prop::collection::vec(0u8..255, 1..40),
            (0u8..2, prop::collection::vec(0u8..255, 1..20)),
            prop::collection::vec(0u8..255, 1..20),
        ),
    ) {
        let (token_raw, (has_tag, tag_raw), tenant_raw) = args;
        // Map arbitrary bytes onto the printable non-space alphabet.
        let token: String = token_raw
            .iter()
            .map(|&b| (b'!' + b % (b'~' - b'!' + 1)) as char)
            .collect();
        let tag = (has_tag == 1).then(|| tagify(&tag_raw));
        let req = Request::Auth { token, tag: tag.clone() };
        let line = req.to_line();
        prop_assert_eq!(parse_request(&line).unwrap(), req);
        let reply = ReplyHeader::Auth { tag, tenant: tagify(&tenant_raw) };
        let line = reply.to_line();
        prop_assert_eq!(parse_reply(&line).unwrap(), reply);
    }

    #[test]
    fn interleaved_tagged_frames_demux_to_per_tag_payloads(
        args in (
            prop::collection::vec(
                (
                    prop::collection::vec(prop::collection::vec(0u16..256, 0..12), 0..6),
                    0u8..3,
                ),
                1..5,
            ),
            prop::collection::vec(0usize..64, 0..128),
        ),
    ) {
        let (stream_specs, picks) = args;
        // Build each tag's frame sequence: [SUB ack], EVT…, terminal.
        // Terminal kind 0 = END ok, 1 = END cancelled, 2 = ERR tag=….
        struct Plan {
            tag: String,
            frames: Vec<(ReplyHeader, Vec<u8>)>,
            payload: Vec<u8>,
            outcome: StreamOutcome,
        }
        let plans: Vec<Plan> = stream_specs
            .iter()
            .enumerate()
            .map(|(i, (chunks, kind))| {
                let tag = format!("s{i}");
                let of = chunks.len().max(1);
                let mut frames: Vec<(ReplyHeader, Vec<u8>)> = vec![(
                    ReplyHeader::Sub {
                        tag: tag.clone(),
                        model: "m".to_string(),
                        t_len: of,
                        seed: i as u64,
                        fmt: WireFormat::Tsv,
                    },
                    Vec::new(),
                )];
                let mut payload = Vec::new();
                for (snap, chunk) in chunks.iter().enumerate() {
                    let bytes: Vec<u8> = chunk.iter().map(|&b| b as u8).collect();
                    payload.extend_from_slice(&bytes);
                    frames.push((
                        ReplyHeader::Evt {
                            tag: tag.clone(),
                            snap,
                            of,
                            bytes: bytes.len(),
                        },
                        bytes,
                    ));
                }
                let outcome = match kind % 3 {
                    0 => StreamOutcome::Complete,
                    1 => StreamOutcome::Cancelled,
                    _ => StreamOutcome::Failed {
                        code: ErrorCode::Internal,
                        message: "boom".to_string(),
                    },
                };
                let terminal = match &outcome {
                    StreamOutcome::Failed { code, message } => ReplyHeader::Err {
                        code: *code,
                        tag: Some(tag.clone()),
                        message: message.clone(),
                    },
                    StreamOutcome::Cancelled => ReplyHeader::End {
                        tag: tag.clone(),
                        snapshots: chunks.len(),
                        edges: 3 * i,
                        status: EndStatus::Cancelled,
                        qms: None,
                        genms: None,
                        trace: None,
                    },
                    _ => ReplyHeader::End {
                        tag: tag.clone(),
                        snapshots: chunks.len(),
                        edges: 3 * i,
                        status: EndStatus::Ok,
                        qms: Some(i as u64),
                        genms: Some(2 * i as u64),
                        trace: None,
                    },
                };
                frames.push((terminal, Vec::new()));
                Plan { tag, frames, payload, outcome }
            })
            .collect();

        // Interleave the per-tag sequences in a proptest-chosen order
        // (per-tag order preserved — the wire guarantees that much;
        // cross-tag order is arbitrary).
        let mut cursors = vec![0usize; plans.len()];
        let mut demux = TagDemux::new();
        let mut step = 0usize;
        loop {
            let live: Vec<usize> = plans
                .iter()
                .enumerate()
                .filter(|(i, p)| cursors[*i] < p.frames.len())
                .map(|(i, _)| i)
                .collect();
            if live.is_empty() {
                break;
            }
            let pick = picks.get(step % picks.len().max(1)).copied().unwrap_or(step);
            let chosen = live[pick % live.len()];
            let (header, payload) = &plans[chosen].frames[cursors[chosen]];
            // Round-trip each frame through the wire form first: the
            // demux sees exactly what a client would parse.
            let reparsed = parse_reply(&header.to_line()).unwrap();
            prop_assert_eq!(&reparsed, header);
            demux.feed(&reparsed, payload).unwrap();
            cursors[chosen] += 1;
            step += 1;
        }

        for plan in &plans {
            let stream = demux.get(&plan.tag).unwrap();
            prop_assert_eq!(&stream.payload, &plan.payload, "tag {} payload", plan.tag);
            prop_assert_eq!(stream.outcome.as_ref(), Some(&plan.outcome), "tag {}", plan.tag);
            prop_assert_eq!(stream.frames, plan.frames.len() - 2, "tag {}", plan.tag);
        }
        prop_assert_eq!(demux.finished().count(), plans.len());
        prop_assert_eq!(demux.pending().count(), 0);
    }
}

//! Property tests of the wire protocol's framing: arbitrary byte noise,
//! token soup, truncations, and oversized lines must never panic the
//! parsers and always yield a typed `ProtocolError`; every parsed value
//! re-serializes to a canonical line that parses back identically.

use proptest::prelude::*;
use vrdag_suite::serve::protocol::{
    parse_reply, parse_request, ErrorCode, GenSpec, ReplyHeader, Request, WireFormat,
    MAX_LINE_BYTES,
};

fn lowercase(bytes: &[u8]) -> String {
    bytes.iter().map(|&b| (b'a' + b % 26) as char).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_byte_noise_never_panics(raw in prop::collection::vec(0u16..256, 0..400)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let line = String::from_utf8_lossy(&bytes);
        // Any outcome is fine — panicking is the only failure mode.
        let _ = parse_request(&line);
        let _ = parse_reply(&line);
    }

    #[test]
    fn token_soup_never_panics_and_errors_are_typed(
        pieces in prop::collection::vec((0u16..14, 0u16..1000), 0..20),
    ) {
        // Adversarial-but-plausible lines: real command words, real
        // keys, stray separators, numbers — glued in random order.
        let vocab = [
            "GEN", "STATS", "MODELS", "PING", "QUIT", "OK", "ERR",
            "model=", "t=", "seed=", "fmt=tsv", "fmt=", "priority=", "=",
        ];
        let mut line = String::new();
        for &(word, num) in &pieces {
            line.push_str(vocab[word as usize % vocab.len()]);
            if num % 3 != 0 {
                line.push_str(&num.to_string());
            }
            if num % 4 != 0 {
                line.push(' ');
            }
        }
        if let Err(e) = parse_request(&line) {
            // Every failure carries a wire code the frontend can answer with.
            let _ = e.code();
            let _ = e.to_string();
        }
        let _ = parse_reply(&line);
    }

    #[test]
    fn truncated_lines_never_panic(
        args in (1usize..60, 0u64..1_000_000, 0usize..80),
    ) {
        let (t, seed, cut) = args;
        let line = format!("GEN model=m t={t} seed={seed} fmt=bin priority=7");
        let cut = cut % (line.len() + 1);
        // ASCII line, so every cut is a char boundary.
        let _ = parse_request(&line[..cut]);
        let reply = format!(
            "OK GEN id=1 model=m t={t} seed={seed} fmt=bin snapshots={t} edges=12 cache=miss bytes=900"
        );
        let cut = cut % (reply.len() + 1);
        let _ = parse_reply(&reply[..cut]);
    }

    #[test]
    fn oversized_lines_always_yield_line_too_long(pad in 1usize..600) {
        let line = format!("GEN model={} t=1 seed=0 fmt=tsv", "m".repeat(MAX_LINE_BYTES + pad));
        match parse_request(&line) {
            Err(e) => prop_assert_eq!(e.code(), ErrorCode::LineTooLong),
            Ok(req) => prop_assert!(false, "oversized line parsed: {:?}", req),
        }
    }

    #[test]
    fn gen_requests_round_trip(
        args in (
            prop::collection::vec(0u8..26, 1..10),
            1usize..10_000,
            0u64..u64::MAX,
            -100i32..100,
        ),
    ) {
        let (name_raw, t, seed, priority) = args;
        let fmt = if seed % 2 == 0 { WireFormat::Tsv } else { WireFormat::Bin };
        let req = Request::Gen(GenSpec {
            model: lowercase(&name_raw),
            t_len: t,
            seed,
            fmt,
            priority,
        });
        let line = req.to_line();
        prop_assert!(line.len() <= MAX_LINE_BYTES);
        // Parse → re-serialize is the identity on canonical lines.
        let parsed = parse_request(&line).unwrap();
        prop_assert_eq!(&parsed, &req);
        prop_assert_eq!(parsed.to_line(), line);
    }

    #[test]
    fn bare_requests_round_trip(which in 0u8..4) {
        let req = match which {
            0 => Request::Stats,
            1 => Request::Models,
            2 => Request::Ping,
            _ => Request::Quit,
        };
        let line = req.to_line();
        prop_assert_eq!(parse_request(&line).unwrap(), req);
    }

    #[test]
    fn gen_reply_headers_round_trip(
        args in (
            (0u64..u64::MAX, 1usize..10_000, 0u64..u64::MAX),
            (0usize..10_000, 0usize..1_000_000, 0usize..1_000_000),
            0u8..4,
            prop::collection::vec(0u8..26, 1..10),
        ),
    ) {
        let ((id, t, seed), (snapshots, edges, bytes), flags, name_raw) = args;
        let header = ReplyHeader::Gen {
            id,
            model: lowercase(&name_raw),
            t_len: t,
            seed,
            fmt: if flags % 2 == 0 { WireFormat::Tsv } else { WireFormat::Bin },
            snapshots,
            edges,
            cache_hit: flags >= 2,
            bytes,
        };
        let line = header.to_line();
        let parsed = parse_reply(&line).unwrap();
        prop_assert_eq!(&parsed, &header);
        prop_assert_eq!(parsed.to_line(), line);
    }

    #[test]
    fn err_reply_headers_round_trip(
        args in (0u8..7, prop::collection::vec(prop::collection::vec(0u8..26, 1..7), 0..6)),
    ) {
        let (which, words) = args;
        let code = match which {
            0 => ErrorCode::QueueFull,
            1 => ErrorCode::UnknownModel,
            2 => ErrorCode::InvalidRequest,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::LineTooLong,
            5 => ErrorCode::Shutdown,
            _ => ErrorCode::Internal,
        };
        let message =
            words.iter().map(|w| lowercase(w)).collect::<Vec<_>>().join(" ");
        let header = ReplyHeader::Err { code, message };
        let line = header.to_line();
        let parsed = parse_reply(&line).unwrap();
        prop_assert_eq!(&parsed, &header);
        prop_assert_eq!(parsed.to_line(), line);
    }
}

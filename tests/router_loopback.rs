//! End-to-end tests of the sharded front tier (`vrdag_serve::Router`)
//! over live loopback TCP: a router fronting two real backend
//! `Frontend`s must be **indistinguishable from one node** to a client
//! — byte-identical `GEN`/`SUB` frames, the same tag discipline — while
//! adding the fleet behaviors a single node cannot have: consistent
//! placement (cache locality across backends), tenant `AUTH` terminated
//! at the router and asserted over the internal hop, fleet-wide
//! `STATS` aggregation, and transparent failover for idempotent `GEN`s
//! when a backend dies mid-flight.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag_suite::graph::io::BinaryStreamWriter;
use vrdag_suite::prelude::*;
use vrdag_suite::serve::protocol::{ErrorCode, GenSpec, ReplyHeader, Request, WireFormat};
use vrdag_suite::serve::{BackendPool, FrontendConfig};

fn fitted_model(seed: u64) -> Vrdag {
    let g = datasets::generate(&datasets::tiny(), seed);
    let mut cfg = VrdagConfig::test_small();
    cfg.epochs = 2;
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    model.fit(&g, &mut rng).unwrap();
    model
}

/// Serialize exactly as the frontend does for each wire format.
fn encode(graph: &DynamicGraph, fmt: WireFormat) -> Vec<u8> {
    match fmt {
        WireFormat::Tsv => vrdag_suite::graph::io::write_tsv(graph, Vec::new()).unwrap(),
        WireFormat::Bin => {
            let mut w = BinaryStreamWriter::new(
                Vec::new(),
                graph.n_nodes(),
                graph.n_attrs(),
                graph.t_len(),
            )
            .unwrap();
            for (_, s) in graph.iter() {
                w.write_snapshot(s).unwrap();
            }
            w.finish().unwrap()
        }
    }
}

/// Ground truth for `(t_len, seed, fmt)` via a direct in-process core.
fn direct_payload(registry: &ModelRegistry, t_len: usize, seed: u64, fmt: WireFormat) -> Vec<u8> {
    let direct = ServeHandle::new(registry.clone(), 1).unwrap();
    let ticket = direct.submit(GenRequest::new("m", t_len, seed, GenSink::InMemory)).unwrap();
    let result = ticket.wait().unwrap();
    assert!(result.is_ok(), "{:?}", result.error);
    let payload = encode(result.graph.as_deref().unwrap(), fmt);
    direct.shutdown();
    payload
}

struct Backend {
    handle: ServeHandle,
    frontend: Frontend,
    registry: ModelRegistry,
}

/// One backend node serving the shared model `m`. `internal` puts the
/// frontend in router-hop mode (trust `tenant=`, no AUTH gate);
/// `tenants` still applies quotas/weights when given.
fn backend(
    model: &Vrdag,
    workers: usize,
    cache: CacheBudget,
    tenants: Option<TenantRegistry>,
    internal: bool,
) -> Backend {
    let registry = ModelRegistry::new();
    registry.register("m", model).unwrap();
    let handle = ServeHandle::with_config(
        registry.clone(),
        ServeConfig {
            workers,
            cache,
            tenants: tenants.unwrap_or_default(),
            logger: Logger::disabled(),
            ..Default::default()
        },
    )
    .unwrap();
    let frontend = Frontend::bind_with(
        handle.clone(),
        "127.0.0.1:0",
        FrontendConfig { trust_tenant_assertion: internal, ..Default::default() },
    )
    .unwrap();
    Backend { handle, frontend, registry }
}

fn fixture_tenants() -> TenantRegistry {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/tenants.conf");
    TenantRegistry::from_file(path).expect("fixture parses")
}

fn router(backends: &[&Backend], cfg: RouterConfig) -> Router {
    let addrs = backends.iter().map(|b| b.frontend.local_addr()).collect();
    Router::bind("127.0.0.1:0", addrs, cfg).unwrap()
}

fn quiet_router_config() -> RouterConfig {
    RouterConfig { logger: Logger::disabled(), ..Default::default() }
}

/// Read frames until `tag`'s terminal frame arrives, returning every
/// frame for that tag in order (frames for other tags are stashed by
/// the caller's closure-free pattern: they fail the test, which keeps
/// the lock-step tests honest).
fn read_stream(client: &mut LineClient, tag: &str) -> Vec<(ReplyHeader, Vec<u8>)> {
    let mut frames = Vec::new();
    loop {
        let reply = client.read_frame().unwrap();
        let done = matches!(
            &reply.header,
            ReplyHeader::End { tag: t, .. } if t == tag
        ) || matches!(
            &reply.header,
            ReplyHeader::Err { tag: Some(t), .. } if t == tag
        );
        frames.push((reply.header, reply.payload));
        if done {
            return frames;
        }
    }
}

#[test]
fn gen_and_sub_through_router_are_byte_identical_to_direct() {
    let model = fitted_model(11);
    let a = backend(&model, 2, CacheBudget::entries(16), None, true);
    let b = backend(&model, 2, CacheBudget::entries(16), None, true);
    let mut router = router(&[&a, &b], quiet_router_config());
    let mut client = LineClient::connect(router.local_addr()).unwrap();

    // Buffered GENs across several seeds (spanning seed buckets so both
    // backends can participate) and both wire formats.
    for (seed, fmt) in [(1u64, WireFormat::Tsv), (2, WireFormat::Bin), (40, WireFormat::Bin)] {
        let expected = direct_payload(&a.registry, 3, seed, fmt);
        let reply = client.gen(GenSpec::new("m", 3, seed, fmt)).unwrap();
        match reply.header {
            ReplyHeader::Gen { t_len, seed: rs, fmt: rf, snapshots, bytes, .. } => {
                assert_eq!((t_len, rs, rf, snapshots), (3, seed, fmt, 3));
                assert_eq!(bytes, reply.payload.len());
            }
            other => panic!("expected OK GEN through the router, got {other:?}"),
        }
        assert_eq!(reply.payload, expected, "routed payload must be byte-identical");
    }

    // A tagged SUB: the EVT payloads concatenated in order must equal
    // the buffered GEN payload — through the router exactly as direct.
    let expected = direct_payload(&a.registry, 4, 7, WireFormat::Bin);
    client.send(&Request::Sub(GenSpec::new("m", 4, 7, WireFormat::Bin).with_tag("s1"))).unwrap();
    let frames = read_stream(&mut client, "s1");
    assert!(
        matches!(&frames[0].0, ReplyHeader::Sub { tag, .. } if tag == "s1"),
        "first frame must be the OK SUB ack, got {:?}",
        frames[0].0
    );
    let mut streamed = Vec::new();
    for (header, payload) in &frames[1..frames.len() - 1] {
        assert!(matches!(header, ReplyHeader::Evt { tag, .. } if tag == "s1"));
        streamed.extend_from_slice(payload);
    }
    match &frames[frames.len() - 1].0 {
        ReplyHeader::End { tag, snapshots, .. } => {
            assert_eq!(tag, "s1");
            assert_eq!(*snapshots, 4);
        }
        other => panic!("expected END, got {other:?}"),
    }
    assert_eq!(streamed, expected, "streamed bytes must be byte-identical through the router");

    // An untagged SUB gets a router-assigned `~n` tag, exactly like a
    // direct connection would (the router must own the numbering — two
    // backends would both hand out `~1` and collide).
    client.send(&Request::Sub(GenSpec::new("m", 2, 9, WireFormat::Tsv))).unwrap();
    let ack = client.read_frame().unwrap();
    let auto = match &ack.header {
        ReplyHeader::Sub { tag, .. } => {
            assert!(tag.starts_with('~'), "expected a server-assigned tag, got {tag:?}");
            tag.clone()
        }
        other => panic!("expected OK SUB, got {other:?}"),
    };
    let mut frames = read_stream(&mut client, &auto);
    frames.insert(0, (ack.header, ack.payload));
    assert!(matches!(
        &frames[frames.len() - 1].0,
        ReplyHeader::End { tag, .. } if *tag == auto
    ));

    let bye = client.request(&Request::Quit { tag: None }).unwrap();
    assert!(matches!(bye.header, ReplyHeader::Bye { .. }));
    router.shutdown();
}

#[test]
fn cache_locality_same_key_misses_exactly_once_fleet_wide() {
    let model = fitted_model(13);
    let a = backend(&model, 2, CacheBudget::entries(16), None, true);
    let b = backend(&model, 2, CacheBudget::entries(16), None, true);
    let mut router = router(&[&a, &b], quiet_router_config());

    // The same (model, t, seed) key through two *separate* client
    // connections: placement is per-request, not per-connection, so
    // both must land on the same backend's SnapshotCache.
    for round in 0..2 {
        let mut client = LineClient::connect(router.local_addr()).unwrap();
        let reply = client.gen(GenSpec::new("m", 4, 5, WireFormat::Bin)).unwrap();
        match reply.header {
            ReplyHeader::Gen { cache_hit, .. } => {
                assert_eq!(cache_hit, round == 1, "second round must be served from cache");
            }
            other => panic!("expected OK GEN, got {other:?}"),
        }
        let _ = client.request(&Request::Quit { tag: None });
    }
    let (sa, sb) = (a.handle.stats(), b.handle.stats());
    assert_eq!(
        sa.cache.misses + sb.cache.misses,
        1,
        "identical keys must generate on exactly one backend (a={:?} b={:?})",
        sa.cache,
        sb.cache
    );
    assert_eq!(sa.cache.hits + sb.cache.hits, 1, "the repeat must be a hit on the same node");
    router.shutdown();
}

#[test]
fn auth_terminates_at_router_and_stats_aggregates_tenant_counters() {
    let model = fitted_model(17);
    // Internal-mode backends: no AUTH gate of their own, but the same
    // tenant file for quotas/weights keyed by the router's assertion.
    let a = backend(&model, 2, CacheBudget::entries(16), Some(fixture_tenants()), true);
    let b = backend(&model, 2, CacheBudget::entries(16), Some(fixture_tenants()), true);
    let cfg = RouterConfig { tenants: fixture_tenants(), ..quiet_router_config() };
    let mut router = router(&[&a, &b], cfg);

    // Unauthenticated requests are rejected at the router; the backends
    // never see them.
    let mut nosy = LineClient::connect(router.local_addr()).unwrap();
    let reply = nosy.gen(GenSpec::new("m", 2, 0, WireFormat::Tsv)).unwrap();
    assert!(
        matches!(reply.header, ReplyHeader::Err { code: ErrorCode::AuthRequired, .. }),
        "got {:?}",
        reply.header
    );
    let mut wrong = LineClient::connect(router.local_addr()).unwrap();
    let reply = wrong.auth("tok-wrong").unwrap();
    assert!(matches!(reply.header, ReplyHeader::Err { code: ErrorCode::AuthFailed, .. }));

    // A real token binds the connection; generation flows through the
    // internal hop with the tenant asserted, so the *backends'* stats
    // attribute the jobs to `gold` even though no backend saw a token.
    let mut client = LineClient::connect(router.local_addr()).unwrap();
    let reply = client.auth("tok-gold-fixture").unwrap();
    match &reply.header {
        ReplyHeader::Auth { tenant, .. } => assert_eq!(tenant, "gold"),
        other => panic!("expected OK AUTH, got {other:?}"),
    }
    // Seeds far apart so several seed buckets (and likely both
    // backends) take traffic; aggregation must sum regardless of split.
    let seeds = [0u64, 100, 2000, 31_000];
    for &seed in &seeds {
        let reply = client.gen(GenSpec::new("m", 2, seed, WireFormat::Tsv)).unwrap();
        assert!(matches!(reply.header, ReplyHeader::Gen { .. }), "got {:?}", reply.header);
    }
    let gold_on_backends: u64 = [&a, &b]
        .iter()
        .map(|n| {
            n.handle.stats().tenants.iter().find(|t| t.id == "gold").map_or(0, |t| t.submitted)
        })
        .sum();
    assert_eq!(
        gold_on_backends,
        seeds.len() as u64,
        "every routed job must be attributed to the asserted tenant on its backend"
    );

    // Fleet-wide STATS through the router: the aggregated per-tenant
    // section sums the per-backend counters.
    let reply = client.request(&Request::Stats { tag: None }).unwrap();
    let payload = String::from_utf8(reply.payload).unwrap();
    assert!(matches!(reply.header, ReplyHeader::Stats { .. }));
    assert!(payload.starts_with("route: 2 backends (2 up)"), "got: {payload}");
    let gold_line = payload
        .lines()
        .find(|l| l.trim_start().starts_with("gold") && l.contains("submitted"))
        .unwrap_or_else(|| panic!("no aggregated gold line in:\n{payload}"));
    let submitted: u64 = gold_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert_eq!(submitted, seeds.len() as u64, "aggregate must sum per-tenant submits");
    // Both backends' verbatim sections ride along for drill-down.
    assert_eq!(payload.matches("--- backend ").count(), 2, "got: {payload}");

    // A client cannot smuggle its own tenant= past a *non-internal*
    // node: direct to a plain backend, the assertion is refused.
    let plain = backend(&model, 1, CacheBudget::entries(4), Some(fixture_tenants()), false);
    let mut direct = LineClient::connect(plain.frontend.local_addr()).unwrap();
    let reply = direct.auth("tok-bronze-fixture").unwrap();
    assert!(matches!(reply.header, ReplyHeader::Auth { .. }));
    let reply = direct
        .request(&Request::Gen(
            GenSpec::new("m", 2, 0, WireFormat::Tsv).with_asserted_tenant("gold"),
        ))
        .unwrap();
    match &reply.header {
        ReplyHeader::Err { code: ErrorCode::InvalidRequest, message, .. } => {
            assert!(message.contains("internal-hop"), "got {message:?}");
        }
        other => panic!("tenant smuggling must be refused, got {other:?}"),
    }
    router.shutdown();
}

#[test]
fn backend_death_retries_gens_and_fails_streams_cleanly() {
    let model = fitted_model(23);
    // Single-worker backends so one blocking job deterministically
    // pins a whole node; per-seed buckets so placement is probeable.
    let a = backend(&model, 1, CacheBudget::entries(16), None, true);
    let mut b = backend(&model, 1, CacheBudget::entries(16), None, true);
    let cfg = RouterConfig {
        seed_range: 1,
        retry_backoff: std::time::Duration::from_millis(10),
        ..quiet_router_config()
    };
    let mut router = router(&[&a, &b], cfg);

    // Predict placement offline with the same pool construction the
    // router uses: model fingerprint (learned by the router's startup
    // MODELS probe) + per-seed buckets.
    let fp = a.registry.handles()[0].fingerprint();
    let pool = BackendPool::new(
        vec![a.frontend.local_addr(), b.frontend.local_addr()],
        1,
        &MetricsRegistry::default(),
    );
    let place = |seed: u64| pool.place(pool.request_key(fp, seed)).unwrap();
    let seed_on_b = (0..).find(|&s| place(s) == 1).unwrap();
    let follow_up_on_a = (0..).find(|&s| place(s) == 0).unwrap();

    // Pin B's only worker via its in-process handle so routed work
    // queues behind it deterministically.
    let (started_tx, started_rx) = std::sync::mpsc::channel();
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let mut fired = false;
    let blocker = b
        .handle
        .submit(GenRequest::new(
            "m",
            1,
            seed_on_b + 1,
            GenSink::Callback(Box::new(move |_, _| {
                if !fired {
                    fired = true;
                    started_tx.send(()).unwrap();
                    let _ = release_rx.recv();
                }
            })),
        ))
        .unwrap();
    started_rx.recv().unwrap();

    let expected = direct_payload(&a.registry, 3, seed_on_b, WireFormat::Bin);
    let mut client = LineClient::connect(router.local_addr()).unwrap();
    // A SUB and a GEN, both placed on B, both stuck behind the blocker.
    client
        .send(&Request::Sub(GenSpec::new("m", 3, seed_on_b, WireFormat::Bin).with_tag("s1")))
        .unwrap();
    let ack = client.read_frame().unwrap();
    assert!(
        matches!(&ack.header, ReplyHeader::Sub { tag, .. } if tag == "s1"),
        "got {:?}",
        ack.header
    );
    client
        .send(&Request::Gen(GenSpec::new("m", 3, seed_on_b, WireFormat::Bin).with_tag("g1")))
        .unwrap();

    // Kill B while both are in flight.
    b.frontend.shutdown();

    // The stream cannot be replayed (frames may have been delivered):
    // it must die with a clean tagged ERR. The GEN is idempotent and
    // must be answered transparently from A — byte-identical.
    let mut sub_err = None;
    let mut gen_reply = None;
    while sub_err.is_none() || gen_reply.is_none() {
        let reply = client.read_frame().unwrap();
        match &reply.header {
            ReplyHeader::Err { code, tag: Some(tag), .. } if tag == "s1" => {
                assert_eq!(*code, ErrorCode::BackendUnavailable);
                sub_err = Some(());
            }
            ReplyHeader::Gen { tag: Some(tag), .. } if tag == "g1" => {
                gen_reply = Some(reply.payload.clone());
            }
            other => panic!("unexpected frame during failover: {other:?}"),
        }
    }
    assert_eq!(gen_reply.unwrap(), expected, "failover reply must stay byte-identical");
    assert_eq!(
        a.handle.stats().submitted,
        1,
        "the retried GEN must have landed on the surviving backend"
    );

    // The client connection survives the backend's death: lock-step
    // traffic keeps working against the remaining fleet.
    let pong = client.request(&Request::Ping { tag: None }).unwrap();
    assert!(matches!(pong.header, ReplyHeader::Pong { .. }));
    let reply = client.gen(GenSpec::new("m", 2, follow_up_on_a, WireFormat::Tsv)).unwrap();
    assert!(matches!(reply.header, ReplyHeader::Gen { .. }), "got {:?}", reply.header);

    // The failover is visible in the router's own metrics.
    let metrics = router.metrics().render();
    assert!(
        metrics.contains("vrdag_route_retries_total 1"),
        "retry must be counted, got:\n{metrics}"
    );
    assert!(router.backend_up(0), "A never failed");
    assert!(!router.backend_up(1), "B must be marked down");

    release_tx.send(()).unwrap();
    let _ = blocker.wait();
    router.shutdown();
}

#[test]
fn trace_id_joins_client_router_and_owning_backend() {
    let model = fitted_model(29);
    let a = backend(&model, 2, CacheBudget::entries(16), None, true);
    let b = backend(&model, 2, CacheBudget::entries(16), None, true);
    let mut router = router(&[&a, &b], quiet_router_config());
    let mut client = LineClient::connect(router.local_addr()).unwrap();

    // A routed GEN's terminal frame echoes the trace id the router
    // minted, so the client can quote it against /traces on any tier.
    let reply = client.gen(GenSpec::new("m", 3, 11, WireFormat::Tsv).with_tag("t1")).unwrap();
    let trace = match &reply.header {
        ReplyHeader::Gen { trace: Some(trace), .. } => trace.clone(),
        other => panic!("expected OK GEN with trace=, got {other:?}"),
    };

    // The router recorded a relay span under that id, naming the
    // backend it placed the request on.
    let route_span = router
        .spans()
        .recent(16)
        .into_iter()
        .find(|s| s.trace == trace)
        .unwrap_or_else(|| panic!("trace {trace} missing from router spans"));
    assert_eq!(route_span.tier, "route");
    assert_eq!(route_span.parent, None, "the router minted the id itself");
    assert_eq!(route_span.outcome, "ok");
    assert_eq!(route_span.model, "m");
    assert_eq!(route_span.seed, 11);
    let placed = route_span.backend.clone().expect("route span names its backend");

    // Exactly one backend holds the serve-tier span — the one the
    // router says it placed the request on — parented to the router.
    let serve_spans: Vec<_> = [&a, &b]
        .iter()
        .flat_map(|n| {
            let addr = n.frontend.local_addr().to_string();
            n.frontend.spans().recent(16).into_iter().map(move |s| (addr.clone(), s))
        })
        .filter(|(_, s)| s.trace == trace)
        .collect();
    assert_eq!(serve_spans.len(), 1, "the trace must appear on exactly one backend");
    let (owner_addr, serve_span) = &serve_spans[0];
    assert_eq!(*owner_addr, placed, "span owner must match the router's placement");
    assert_eq!(serve_span.tier, "serve");
    assert_eq!(serve_span.parent, Some("route"), "propagated ids are parented to the router");
    assert_eq!(serve_span.outcome, "ok");
    assert_eq!(serve_span.seed, 11);

    // Stage timings are consistent: the backend's whole job ran inside
    // the router's relay window, so its total cannot exceed the relay
    // span's total (both are real monotonic durations on one machine).
    let stage = |span: &vrdag_suite::obs::Span, name: &str| {
        span.stages_ms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ms)| *ms)
            .unwrap_or_else(|| panic!("{} span lacks stage {name}", span.tier))
    };
    let serve_total = stage(serve_span, "total");
    let route_total = stage(&route_span, "total");
    assert!(
        serve_total <= route_total,
        "backend total ({serve_total:.3}ms) must nest inside the relay ({route_total:.3}ms)"
    );
    assert!(stage(&route_span, "dial") >= 0.0 && stage(&route_span, "relay") >= 0.0);

    // Streams carry the id the same way: SUB's END frame echoes it and
    // both tiers record spans under it.
    client.send(&Request::Sub(GenSpec::new("m", 2, 12, WireFormat::Tsv).with_tag("s1"))).unwrap();
    let frames = read_stream(&mut client, "s1");
    let sub_trace = match &frames.last().unwrap().0 {
        ReplyHeader::End { trace: Some(trace), .. } => trace.clone(),
        other => panic!("expected END with trace=, got {other:?}"),
    };
    assert_ne!(sub_trace, trace, "each request gets its own id");
    assert!(
        router.spans().recent(16).iter().any(|s| s.trace == sub_trace),
        "SUB relay span missing"
    );
    assert!(
        [&a, &b].iter().any(|n| n.frontend.spans().recent(16).iter().any(|s| s.trace == sub_trace)),
        "SUB serve span missing"
    );
    router.shutdown();
}

#[test]
fn trace_assertion_is_refused_outside_the_internal_hop() {
    let model = fitted_model(31);
    let a = backend(&model, 1, CacheBudget::entries(4), None, true);
    let mut router = router(&[&a], quiet_router_config());

    // The router's client side is never an internal hop: a smuggled
    // trace= is refused before any backend sees the request.
    let mut client = LineClient::connect(router.local_addr()).unwrap();
    for request in [
        Request::Gen(GenSpec::new("m", 2, 0, WireFormat::Tsv).with_trace_id("deadbeef-1")),
        Request::Sub(
            GenSpec::new("m", 2, 0, WireFormat::Tsv).with_tag("s1").with_trace_id("deadbeef-2"),
        ),
    ] {
        let reply = client.request(&request).unwrap();
        match &reply.header {
            ReplyHeader::Err { code: ErrorCode::InvalidRequest, message, .. } => {
                assert!(message.contains("internal-hop"), "got {message:?}");
            }
            other => panic!("trace smuggling must be refused, got {other:?}"),
        }
    }
    assert_eq!(a.handle.stats().submitted, 0, "no smuggled request may reach a backend");

    // Same refusal direct to a *non-internal* frontend; an internal
    // one (router-facing) accepts the assertion instead.
    let plain = backend(&model, 1, CacheBudget::entries(4), None, false);
    let mut direct = LineClient::connect(plain.frontend.local_addr()).unwrap();
    let reply = direct
        .request(&Request::Gen(
            GenSpec::new("m", 2, 0, WireFormat::Tsv).with_trace_id("deadbeef-3"),
        ))
        .unwrap();
    match &reply.header {
        ReplyHeader::Err { code: ErrorCode::InvalidRequest, message, .. } => {
            assert!(message.contains("internal-hop"), "got {message:?}");
        }
        other => panic!("trace smuggling must be refused, got {other:?}"),
    }

    let mut internal = LineClient::connect(a.frontend.local_addr()).unwrap();
    let reply = internal
        .request(&Request::Gen(GenSpec::new("m", 2, 0, WireFormat::Tsv).with_trace_id("cafe-77")))
        .unwrap();
    match &reply.header {
        ReplyHeader::Gen { trace: Some(trace), .. } => assert_eq!(trace, "cafe-77"),
        other => panic!("internal hop must accept and echo the asserted id, got {other:?}"),
    }
    let span = a
        .frontend
        .spans()
        .recent(4)
        .into_iter()
        .find(|s| s.trace == "cafe-77")
        .expect("asserted id recorded");
    assert_eq!(span.parent, Some("route"), "propagated ids are parented to the upstream hop");
    router.shutdown();
}

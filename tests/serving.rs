//! Integration tests of the serving subsystem: stepper/one-shot
//! equivalence, persist → registry → concurrent generation determinism,
//! and streaming spill through the incremental writers.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use vrdag_suite::graph::io;
use vrdag_suite::prelude::*;
use vrdag_suite::serve::SnapshotStream;

fn work_dir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join("vrdag_serving_it").join(name);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn fitted_model(seed: u64) -> Vrdag {
    let g = datasets::generate(&datasets::tiny(), seed);
    let mut cfg = VrdagConfig::test_small();
    cfg.epochs = 2;
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    model.fit(&g, &mut rng).unwrap();
    model
}

#[test]
fn generation_state_step_matches_one_shot_generate() {
    let model = fitted_model(1);
    let mut r1 = StdRng::seed_from_u64(99);
    let one_shot = model.generate(6, &mut r1).unwrap();

    let mut r2 = StdRng::seed_from_u64(99);
    let mut state = model.begin_generation(&mut r2).unwrap();
    let stepped: Vec<Snapshot> = (0..6).map(|_| state.step(&model)).collect();
    assert_eq!(one_shot, DynamicGraph::new(stepped));
}

#[test]
fn persist_load_then_concurrent_generate_is_deterministic_and_distinct() {
    // persist → load → concurrent generate from 4 threads with distinct
    // seeds produces deterministic, distinct graphs.
    let dir = work_dir("registry_concurrency");
    let model = fitted_model(2);
    let path = dir.join("model.vrdg");
    model.save(&path).unwrap();

    let registry = ModelRegistry::new();
    registry.load_file("m", &path).unwrap();
    let handle = Arc::new(registry.get("m").unwrap());

    let spawn_fleet = || -> Vec<DynamicGraph> {
        let threads: Vec<_> = (0..4u64)
            .map(|seed| {
                let handle = Arc::clone(&handle);
                std::thread::spawn(move || {
                    let stream = handle.stream(4, seed).unwrap();
                    DynamicGraph::new(stream.collect::<Vec<_>>())
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    };

    let first = spawn_fleet();
    let second = spawn_fleet();
    // Deterministic: same seed → same graph across runs and threads.
    assert_eq!(first, second);
    // Matches the single-threaded path on the original (pre-save) model.
    for (seed, g) in first.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        assert_eq!(g, &model.generate(4, &mut rng).unwrap(), "seed {seed}");
    }
    // Distinct: different seeds give different graphs.
    for a in 0..first.len() {
        for b in a + 1..first.len() {
            assert_ne!(first[a], first[b], "seeds {a} and {b} collided");
        }
    }
}

#[test]
fn scheduler_streams_to_disk_with_bounded_memory_sinks() {
    let dir = work_dir("scheduler_spill");
    let model = fitted_model(3);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();

    let mut scheduler = Scheduler::new(registry, 2).unwrap();
    for seed in 0..4u64 {
        let sink = if seed % 2 == 0 {
            GenSink::TsvFile(dir.join(format!("gen-{seed}.tsv")))
        } else {
            GenSink::BinaryFile(dir.join(format!("gen-{seed}.vdag")))
        };
        scheduler.submit(GenRequest::new("m", 3, seed, sink)).unwrap();
    }
    let report = scheduler.join().unwrap();
    assert!(report.all_ok(), "{}", report.render());
    assert_eq!(report.jobs.len(), 4);
    // The streaming sinks never materialize a DynamicGraph.
    assert!(report.jobs.iter().all(|j| j.graph.is_none()));

    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let expected = model.generate(3, &mut rng).unwrap();
        let on_disk = if seed % 2 == 0 {
            io::load_tsv(dir.join(format!("gen-{seed}.tsv"))).unwrap()
        } else {
            io::load_binary(dir.join(format!("gen-{seed}.vdag"))).unwrap()
        };
        assert_eq!(expected, on_disk, "seed {seed}");
    }
}

#[test]
fn snapshot_stream_spills_incrementally_through_io_writers() {
    let model = fitted_model(4);
    let bytes = model.to_bytes().unwrap();

    // TSV spill equals the one-shot writer output byte-for-byte.
    let stream = SnapshotStream::new(Vrdag::from_bytes(&bytes).unwrap(), 4, 5).unwrap();
    let mut spilled = Vec::new();
    stream.spill_tsv(&mut spilled).unwrap();

    let mut rng = StdRng::seed_from_u64(5);
    let expected = model.generate(4, &mut rng).unwrap();
    let one_shot = io::write_tsv(&expected, Vec::new()).unwrap();
    assert_eq!(spilled, one_shot);
}

#[test]
fn facade_prelude_exposes_the_serving_surface() {
    // Compile-time check that the serving types flow through the facade.
    let registry: ModelRegistry = ModelRegistry::new();
    assert!(registry.is_empty());
    let _stats: vrdag_suite::serve::StreamStats = Default::default();
    let _cache: SnapshotCache = SnapshotCache::new(CacheBudget::entries(2));
    let _cache_stats: CacheStats = _cache.stats();
    // SchedulerConfig is the compatibility alias of ServeConfig.
    let _config: SchedulerConfig = ServeConfig::default();
    let model = fitted_model(6);
    let mut rng = StdRng::seed_from_u64(0);
    let state: GenerationState = model.begin_generation(&mut rng).unwrap();
    assert_eq!(state.t(), 0);

    // The service core and wire layer flow through the prelude too.
    registry.register("m", &model).unwrap();
    let handle: ServeHandle = ServeHandle::new(registry, 1).unwrap();
    let ticket: Ticket = handle.submit(GenRequest::new("m", 1, 0, GenSink::Discard)).unwrap();
    assert!(ticket.wait().unwrap().is_ok());
    let serve_stats: ServeStats = handle.stats();
    assert_eq!(serve_stats.completed, 1);
    let frontend: Frontend = Frontend::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let _client: LineClient = LineClient::connect(frontend.local_addr()).unwrap();
}

#[test]
fn affinity_batching_matches_per_job_scheduling() {
    // N same-model jobs drained with model-affinity batching must produce
    // exactly the sequences that one-scheduler-per-job scheduling (a pool
    // that can never batch) produces for the same seeds.
    let model = fitted_model(7);
    let seeds: Vec<u64> = (0..6).collect();

    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let mut batched = Scheduler::new(registry.clone(), 2).unwrap();
    for &seed in &seeds {
        batched.submit(GenRequest::new("m", 4, seed, GenSink::InMemory)).unwrap();
    }
    let report = batched.join().unwrap();
    assert!(report.all_ok(), "{}", report.render());
    assert!(report.affinity.batches >= 1);
    assert!(report.affinity.max_batch_len >= 2, "{:?}", report.affinity);

    for &seed in &seeds {
        let mut solo = Scheduler::new(registry.clone(), 1).unwrap();
        solo.submit(GenRequest::new("m", 4, seed, GenSink::InMemory)).unwrap();
        let solo_report = solo.join().unwrap();
        assert!(solo_report.all_ok(), "{}", solo_report.render());
        let expected = solo_report.jobs[0].graph.as_deref().unwrap();
        let batched_job = report.jobs.iter().find(|j| j.seed == seed).unwrap();
        assert_eq!(batched_job.graph.as_deref().unwrap(), expected, "seed {seed}");
    }
}

#[test]
fn admission_control_rejects_overflow_and_report_stays_consistent() {
    let model = fitted_model(8);
    let registry = ModelRegistry::new();
    registry.register("m", &model).unwrap();
    let mut scheduler = Scheduler::with_config(
        registry,
        SchedulerConfig { workers: 1, max_queue_depth: Some(1), ..Default::default() },
    )
    .unwrap();

    // Pin the single worker inside a job so submissions stay queued.
    let (started_tx, started_rx) = std::sync::mpsc::channel();
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let mut fired = false;
    scheduler
        .submit(GenRequest::new(
            "m",
            1,
            0,
            GenSink::Callback(Box::new(move |_, _| {
                if !fired {
                    fired = true;
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                }
            })),
        ))
        .unwrap();
    started_rx.recv().unwrap();

    let accepted = scheduler.submit(GenRequest::new("m", 1, 1, GenSink::Discard)).unwrap();
    let rejected = scheduler.submit(GenRequest::new("m", 1, 2, GenSink::Discard));
    match rejected {
        Err(ServeError::QueueFull { depth, cap }) => {
            assert_eq!((depth, cap), (1, 1));
        }
        other => panic!("expected QueueFull, got {:?}", other.map(|_| ())),
    }

    release_tx.send(()).unwrap();
    let report = scheduler.join().unwrap();
    assert!(report.all_ok(), "{}", report.render());
    // Exactly the accepted jobs ran; the rejected seed never appears.
    assert_eq!(report.jobs.len(), 2);
    assert!(report.jobs.iter().any(|j| j.id == accepted));
    assert!(report.jobs.iter().all(|j| j.seed != 2));
}
